(** A first-order analytical performance model (the paper's §VIII future
    work: "model the performance benefits/losses due to local memory usage
    on CPUs").

    Estimates a kernel version's runtime from aggregate execution counts
    alone — no memory trace and no cache simulation: every access is
    assumed to hit L1. Comparing its predictions against the trace-driven
    simulator quantifies exactly the paper's motivation for the empirical
    approach: overhead-driven effects (staging copies, barriers, work-item
    loop fission) are predictable, but the cache-layout effects behind the
    NVD-MM-B / AMD-MM losses are invisible to a countless model. *)

open Grover_ocl
module P = Platform

type inputs = {
  totals : Trace.totals;
  wg_size : int;
  vectorized : bool;  (** explicit vector types defeat lane vectorisation *)
}

(** Predicted kernel time in seconds on a cache-only platform.
    @raise Invalid_argument on GPU platforms (the model is CPU-only). *)
let predict (plat : P.t) (inp : inputs) : float =
  let m =
    match plat.P.mem with
    | P.Cpu_mem m -> m
    | P.Gpu_mem _ -> invalid_arg "Predict.predict: CPU/MIC platforms only"
  in
  let c = plat.P.costs in
  let t = inp.totals in
  let simd = if inp.vectorized then 1.0 else float_of_int (max 1 plat.P.simd) in
  let f = float_of_int in
  let compute =
    ((f t.Trace.t_int_ops *. c.P.c_int)
    +. (f t.Trace.t_float_ops *. c.P.c_float)
    +. (f t.Trace.t_special_ops *. c.P.c_special)
    +. (f t.Trace.t_branches *. c.P.c_branch))
    /. simd
  in
  let total_wis = f (t.Trace.t_groups * inp.wg_size) in
  let dispatch = total_wis *. c.P.c_wi_dispatch /. simd in
  (* Uniform kernels: every work-item crosses each barrier site once. *)
  let rounds_per_group =
    if inp.wg_size = 0 || t.Trace.t_groups = 0 then 0.0
    else f t.Trace.t_barriers /. f (t.Trace.t_groups * inp.wg_size)
  in
  let barrier =
    rounds_per_group *. f t.Trace.t_groups
    *. (c.P.c_barrier_round +. (f inp.wg_size *. c.P.c_barrier_wi))
  in
  (* The countless-memory assumption: L1 hits, lane-coalesced by the same
     throughput discount the simulator applies. *)
  let accesses = f (t.Trace.t_loads + t.Trace.t_stores) /. simd in
  let memory = accesses *. f m.P.l1.Cache.latency *. 0.35 in
  let per_queue =
    (compute +. dispatch +. barrier +. memory) /. f (max 1 plat.P.cores)
  in
  per_queue /. (plat.P.freq_ghz *. 1e9)

(** Predicted normalized performance from the two versions' counts. *)
let predict_np (plat : P.t) ~(with_lm : inputs) ~(without_lm : inputs) : float =
  predict plat with_lm /. predict plat without_lm

(** One scored kernel variant. *)
type ranked = {
  rk_label : string;  (** e.g. "with_lm", "without_lm", "promoted" *)
  rk_seconds : float;  (** predicted time; lower is better *)
}

(** Score every variant of a kernel analytically and rank them fastest
    first (ties keep input order). This is the selection entry point of
    the bidirectional optimizer: the autotune step can pick
    [List.hd (rank plat variants)] instead of executing each version. *)
let rank (plat : P.t) (variants : (string * inputs) list) : ranked list =
  List.stable_sort
    (fun a b -> Float.compare a.rk_seconds b.rk_seconds)
    (List.map
       (fun (label, inp) -> { rk_label = label; rk_seconds = predict plat inp })
       variants)
