(** Promote: automatic __local insertion — the Grover rewrite run in
    reverse (Han & Abdelrahman, "Automatic Tuning of Local Memory Use on
    GPGPUs").

    Where {!Grover_core.Rewrite} replaces local-tile loads with direct
    global accesses, this pass detects group-wise *reuse* among affine
    global loads and stages them through a `__local` tile:

    + decompose each global-load index into [base + Σ var·coeff] where the
      vars are work-item coordinates ([get_local_id(d)]) and
      constant-trip-count loop counters, and the base/coeffs are
      group-uniform;
    + map the vars onto the local-size box: a thread-id var covers its own
      dimension, loop counters fill the remaining dimensions with equal
      extents — an exact bijection between work-items and tile elements,
      so the cooperative copy-in needs no guards;
    + synthesize the staging prologue in the (uniform) preheader of the
      outermost tiled loop: [barrier(local); one copy-in load/store per
      work-item per tile; barrier(local)] — one shared barrier pair for
      all tiles staged at the same point;
    + rewrite the reuse loads to index the tile by [Σ var·stride].

    Every store writes the element named by the work-item's own local
    ids — a bijection {!Grover_analysis.Race} certifies race-free — and
    the copy-in reads exactly the addresses the original loads would have
    touched, so bounds behaviour is unchanged. Candidates that do not fit
    (no reuse, footprint does not tile the box, divergent staging point,
    values unavailable at the preheader) are refused with a reason, never
    half-rewritten: the pass is plan/apply like the forward engine. *)

open Grover_ir
open Ssa
module Q = Grover_support.Rational
module Pass = Grover_passes.Pass
module Passes = Grover_passes
module Atom = Grover_core.Atom
module Config = Grover_analysis.Config

(* -- Constant-trip-count loops --------------------------------------------- *)

type loop = {
  l_phi : instr;  (** the induction phi: starts at 0, steps by 1 *)
  l_header : block;
  l_latch : block;
  l_preheader : block;  (** unique non-latch predecessor, unconditional *)
  l_trip : int;  (** iteration count: phi ranges over 0 .. trip-1 *)
  l_body : (int, unit) Hashtbl.t;  (** bids of the natural loop, incl. header *)
}

let in_loop (l : loop) (b : block) : bool = Hashtbl.mem l.l_body b.bid
let ( let* ) = Option.bind

(* Recognise the canonical lowered shape: phi incoming {0 from preheader,
   step from latch}, step = phi + 1, and an [icmp slt phi/step, C] feeding
   the exit branch in the header (while-form) or latch (do-while form). *)
let loop_of_phi (fn : func) (h : block) (i : instr) : loop option =
  match i.op with
  | Phi { incoming = [ (b1, v1); (b2, v2) ]; p_ty } when ty_is_integer p_ty ->
      let classify (bi, vi) (bl, vl) =
        match (vi, vl) with
        | Cint (_, 0), Vinstr step -> (
            match step.op with
            | Binop (Add, Cint (_, 1), Vinstr p) | Binop (Add, Vinstr p, Cint (_, 1))
              when p.iid = i.iid ->
                Some (bi, bl, step)
            | _ -> None)
        | _ -> None
      in
      let* _init, latch, step =
        match classify (b1, v1) (b2, v2) with
        | Some r -> Some r
        | None -> classify (b2, v2) (b1, v1)
      in
      let trip_from (b : block) (counter : instr) =
        match b.term with
        | Some { op = Cond_br (Vinstr c, _, _); _ } -> (
            match c.op with
            | Icmp (Islt, Vinstr p, Cint (_, n)) when p.iid = counter.iid && n >= 1
              ->
                Some n
            | _ -> None)
        | _ -> None
      in
      let* trip =
        match trip_from h i with Some n -> Some n | None -> trip_from latch step
      in
      let non_latch_preds =
        List.filter (fun p -> p.bid <> latch.bid) (predecessors fn h)
      in
      let* preheader =
        match non_latch_preds with
        | [ p ] -> (
            match p.term with Some { op = Br t; _ } when t.bid = h.bid -> Some p | _ -> None)
        | _ -> None
      in
      (* Natural-loop body: blocks reaching the latch without passing the
         header, plus the header itself. *)
      let body = Hashtbl.create 8 in
      Hashtbl.replace body h.bid ();
      let rec back (b : block) =
        if not (Hashtbl.mem body b.bid) then begin
          Hashtbl.replace body b.bid ();
          List.iter back (predecessors fn b)
        end
      in
      back latch;
      Some { l_phi = i; l_header = h; l_latch = latch; l_preheader = preheader;
             l_trip = trip; l_body = body }
  | _ -> None

let find_loops (fn : func) : loop list =
  List.concat_map
    (fun b -> List.filter_map (loop_of_phi fn b) b.instrs)
    fn.blocks

(* First block of the loop body in execution order. *)
let body_entry (l : loop) : block =
  match l.l_header.term with
  | Some { op = Cond_br (_, t, e); _ } -> if in_loop l t then t else e
  | Some { op = Br t; _ } -> t
  | _ -> l.l_header

(* Blocks of [l]'s body that execute unconditionally on every iteration:
   the chain of single-successor blocks from the body entry. The walk stops
   at the first conditional terminator (that block itself still executes
   unconditionally, so it is included). *)
let spine (l : loop) : block list =
  let b0 = body_entry l in
  if b0.bid = l.l_header.bid then [ b0 ]
  else
    let rec go acc (b : block) =
      if b.bid = l.l_header.bid || List.exists (fun x -> x.bid = b.bid) acc then
        acc
      else
        let acc = b :: acc in
        match b.term with Some { op = Br t; _ } -> go acc t | _ -> acc
    in
    go [] b0

let on_spine (l : loop) (b : block) : bool =
  List.exists (fun x -> x.bid = b.bid) (spine l)

(* -- Group-uniform polynomials --------------------------------------------- *)

(* A [uterm] is a rational constant times a product of group-uniform IR
   values; a [upoly] is a sum of uterms. These are the bases and
   coefficients of the decomposition — everything in them is the same for
   every work-item of the group, so materialising them once in the
   preheader is sound. *)
type uterm = { uc : Q.t; ufac : value list }
type upoly = uterm list

let vkey = function
  | Arg a -> (0, a.a_index)
  | Vinstr i -> (1, i.iid)
  | Cint _ | Cfloat _ -> invalid_arg "vkey: constant factor"

let cmp_fac a b = Stdlib.compare (vkey a) (vkey b)

let fac_eq a b =
  List.length a = List.length b && List.for_all2 value_equal a b

let up_const (q : Q.t) : upoly = if Q.is_zero q then [] else [ { uc = q; ufac = [] } ]
let up_val (v : value) : upoly = [ { uc = Q.one; ufac = [ v ] } ]

let up_add (a : upoly) (b : upoly) : upoly =
  List.fold_left
    (fun acc t ->
      let same, rest = List.partition (fun u -> fac_eq u.ufac t.ufac) acc in
      let c = List.fold_left (fun q u -> Q.add q u.uc) t.uc same in
      if Q.is_zero c then rest else { uc = c; ufac = t.ufac } :: rest)
    a b

let up_scale (q : Q.t) (p : upoly) : upoly =
  if Q.is_zero q then []
  else List.map (fun t -> { t with uc = Q.mul q t.uc }) p

let up_mul (a : upoly) (b : upoly) : upoly =
  List.fold_left
    (fun acc ta ->
      up_add acc
        (List.map
           (fun tb ->
             { uc = Q.mul ta.uc tb.uc;
               ufac = List.sort cmp_fac (ta.ufac @ tb.ufac) })
           b))
    [] a

let up_integral (p : upoly) : bool = List.for_all (fun t -> Q.is_integer t.uc) p
let up_factors (p : upoly) : value list = List.concat_map (fun t -> t.ufac) p

(* -- Index decomposition ---------------------------------------------------- *)

type vkind = Vlid of int | Vphi of loop

type tvar = { v_value : value; v_kind : vkind; v_extent : int }

let var_id (v : tvar) =
  match v.v_kind with Vlid d -> (0, d) | Vphi l -> (1, l.l_phi.iid)

(* index = Σ_{pvars} var·coeff + pbase, with group-uniform coeffs/base. *)
type poly = { pbase : upoly; pvars : (tvar * upoly) list }

exception Refuse of string

let refuse fmt = Format.kasprintf (fun s -> raise (Refuse s)) fmt

let vars_add (vs : (tvar * upoly) list) (ws : (tvar * upoly) list) =
  List.fold_left
    (fun acc (v, c) ->
      match List.partition (fun (u, _) -> var_id u = var_id v) acc with
      | [ (u, c0) ], rest ->
          let c' = up_add c0 c in
          if c' = [] then rest else (u, c') :: rest
      | _, rest -> if c = [] then rest else (v, c) :: rest)
    vs ws

let p_add (a : poly) (b : poly) : poly =
  { pbase = up_add a.pbase b.pbase; pvars = vars_add a.pvars b.pvars }

let p_scale_up (s : upoly) (p : poly) : poly =
  { pbase = up_mul s p.pbase;
    pvars =
      List.filter_map
        (fun (v, c) ->
          match up_mul s c with [] -> None | c' -> Some (v, c'))
        p.pvars }

let p_neg (p : poly) : poly = p_scale_up (up_const Q.minus_one) p

let box_dim (bx, by, bz) d = match d with 0 -> bx | 1 -> by | 2 -> bz | _ -> 1

let vname (v : value) : string =
  if Atom.is_atom_value v then Atom.name v
  else match v with Vinstr i -> Printf.sprintf "v%d" i.iid | _ -> "<expr>"

(** Decompose a flat global-load index into tiling vars and uniform rest.
    Vars are checked {e before} uniformity: a constant-trip loop counter is
    group-uniform, but it is a tiling coordinate, not an opaque leaf — and
    the recursion must keep descending through uniform arithmetic like
    [(t*16 + k) * N] to find the [k] inside. *)
let decompose ~(div : Divergence.t) ~(loops : loop list)
    ~(box : int * int * int) ~(load_block : block) (index : value) : poly =
  let rec go (v : value) : poly =
    match Atom.lid_dim v with
    | Some d when d >= 0 && d < 3 ->
        let var = { v_value = v; v_kind = Vlid d; v_extent = box_dim box d } in
        { pbase = []; pvars = [ (var, up_const Q.one) ] }
    | Some d -> refuse "thread-id dimension %d out of range" d
    | None -> (
        match v with
        | Cint (_, n) -> { pbase = up_const (Q.of_int n); pvars = [] }
        | Cfloat _ -> refuse "floating-point value in an index"
        | Arg _ -> { pbase = up_val v; pvars = [] }
        | Vinstr i -> (
            match
              List.find_opt
                (fun l -> l.l_phi.iid = i.iid && in_loop l load_block)
                loops
            with
            | Some l ->
                let var = { v_value = v; v_kind = Vphi l; v_extent = l.l_trip } in
                { pbase = []; pvars = [ (var, up_const Q.one) ] }
            | None -> (
                match i.op with
                | Binop (Add, a, b) -> p_add (go a) (go b)
                | Binop (Sub, a, b) -> p_add (go a) (p_neg (go b))
                | Binop (Mul, a, b) -> (
                    let pa = go a and pb = go b in
                    match (pa.pvars, pb.pvars) with
                    | [], _ -> p_scale_up pa.pbase pb
                    | _, [] -> p_scale_up pb.pbase pa
                    | _ ->
                        refuse "product of two thread-indexed subexpressions")
                | Binop (Shl, a, Cint (_, s)) when s >= 0 && s < 31 ->
                    p_scale_up (up_const (Q.of_int (1 lsl s))) (go a)
                | Cast ((Sext | Zext | Trunc), x, t) when ty_is_integer t ->
                    go x
                | _ ->
                    if Divergence.value_uniform div v then
                      { pbase = up_val v; pvars = [] }
                    else
                      refuse "divergent index component '%s' is not affine in \
                              thread ids"
                        (vname v))))
  in
  go index

(* -- Candidate planning ----------------------------------------------------- *)

type slot = {
  s_var : tvar;
  s_coeff : upoly;  (** global-index stride of this var *)
  s_dim : int;  (** local-size dimension the var is mapped onto *)
}

type cand = {
  c_load : instr;  (** the reuse load being promoted *)
  c_ptr : value;
  c_name : string;  (** tile name, e.g. "A_tile" *)
  c_elem : ty;
  c_base : upoly;
  c_slots : slot list;  (** tile-dims order: mapped dimension descending *)
  c_dims : int list;  (** declared tile shape, same order as [c_slots] *)
  c_bytes : int;
  c_reuse : int;  (** work-items reading each staged element *)
  c_outer : loop;  (** staging happens in this loop's preheader *)
}

let local_budget_bytes = 32768

let rec unwrap_ptr (v : value) : value =
  match v with
  | Vinstr { op = Cast (Bitcast, p, _); _ } -> unwrap_ptr p
  | _ -> v

let buffer_name (v : value) : string =
  match unwrap_ptr v with
  | Arg a -> a.a_name
  | Vinstr { op = Alloca { aname; _ }; _ } -> aname
  | _ -> "global"

(* Can [v] be referenced (or rebuilt from scratch) right before [anchor]?
   Pure chains over dominating defs, constants, arguments and work-item
   builtins can be re-materialised; anything flowing through a phi or a
   load that does not already dominate the anchor cannot — which is exactly
   the soundness condition: a value we rebuild in the preheader must be
   constant for the whole tiled-loop execution. *)
let remat_call (callee : string) : bool =
  List.mem callee
    [ "get_local_id"; "get_global_id"; "get_group_id"; "get_local_size";
      "get_global_size"; "get_num_groups"; "get_work_dim" ]

let rec available (dom : Dom.t) (anchor : instr) (seen : (int, unit) Hashtbl.t)
    (v : value) : bool =
  match v with
  | Cint _ | Cfloat _ | Arg _ -> true
  | Vinstr i ->
      Dom.def_dominates_use dom ~def:i ~use:anchor
      || (not (Hashtbl.mem seen i.iid))
         && begin
              Hashtbl.replace seen i.iid ();
              match i.op with
              | Binop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Extract _
              | Insert _ | Vecbuild _ ->
                  List.for_all (available dom anchor seen) (operands i.op)
              | Call { callee; args; _ } when remat_call callee ->
                  List.for_all (available dom anchor seen) args
              | _ -> false
            end

let plan_load ~(dom : Dom.t) ~(div : Divergence.t) ~(loops : loop list)
    ~(box : int * int * int) (load : instr) : (cand, string) result =
  try
    let block = match load.parent with Some b -> b | None -> raise Not_found in
    let ptr, index =
      match load.op with
      | Load { ptr; index } -> (ptr, index)
      | _ -> invalid_arg "plan_load: not a load"
    in
    let elem = elem_of_ptr (type_of ptr) in
    let p = decompose ~div ~loops ~box ~load_block:block index in
    if p.pvars = [] then
      refuse "no thread-id or tiled-loop term in the index (nothing to stage)";
    if not (up_integral p.pbase && List.for_all (fun (_, c) -> up_integral c) p.pvars)
    then refuse "non-integral index coefficient";
    (* Map vars onto the local-size box: lids to their own dimension, loop
       counters to the remaining dimensions (equal extents required). *)
    let lid_slots, phi_vars =
      List.partition_map
        (fun (v, c) ->
          match v.v_kind with
          | Vlid d -> Either.Left { s_var = v; s_coeff = c; s_dim = d }
          | Vphi _ -> Either.Right (v, c))
        p.pvars
    in
    let phi_vars =
      List.sort
        (fun ((a : tvar), _) ((b : tvar), _) -> Stdlib.compare (var_id a) (var_id b))
        phi_vars
    in
    let taken = List.map (fun s -> s.s_dim) lid_slots in
    let avail =
      List.filter (fun d -> not (List.mem d taken)) [ 0; 1; 2 ]
    in
    let phi_slots, left =
      List.fold_left
        (fun (slots, avail) ((v : tvar), c) ->
          match List.find_opt (fun d -> box_dim box d = v.v_extent) avail with
          | Some d ->
              ( { s_var = v; s_coeff = c; s_dim = d } :: slots,
                List.filter (fun x -> x <> d) avail )
          | None ->
              refuse
                "tile extent %d of loop counter '%s' does not match any free \
                 local-size dimension (footprint exceeds the work-group box)"
                v.v_extent (vname v.v_value))
        ([], avail) phi_vars
    in
    (match List.find_opt (fun d -> box_dim box d > 1) left with
    | Some d ->
        refuse
          "work-items along local dimension %d would stage no tile elements \
           (the work-group is larger than the tile footprint)"
          d
    | None -> ());
    let slots =
      List.sort (fun a b -> Stdlib.compare b.s_dim a.s_dim)
        (lid_slots @ phi_slots)
    in
    let dims = List.map (fun s -> s.s_var.v_extent) slots in
    let reuse =
      List.fold_left (fun acc s -> acc * s.s_var.v_extent) 1 phi_slots
    in
    if reuse < 2 then
      refuse "no inter-work-item reuse: each staged element would be read by \
              a single work item";
    let count = List.fold_left ( * ) 1 dims in
    let bytes = count * ty_size_bytes elem in
    (* The staging point: the preheader of the outermost tiled loop. *)
    let phi_loops =
      List.filter_map
        (fun s -> match s.s_var.v_kind with Vphi l -> Some l | Vlid _ -> None)
        slots
    in
    let ordered =
      List.sort
        (fun a b -> Stdlib.compare (Hashtbl.length b.l_body) (Hashtbl.length a.l_body))
        phi_loops
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
          if not (in_loop a b.l_header) then
            refuse "the tiled loop counters are not nested";
          if not (on_spine a b.l_preheader || on_spine a b.l_header) then
            refuse "an inner tiled loop is conditionally executed";
          chain rest
      | _ -> ()
    in
    chain ordered;
    let outer = List.hd ordered in
    let inner = List.nth ordered (List.length ordered - 1) in
    if not (on_spine inner block) then
      refuse "the reuse load is conditionally executed inside the tiled loop";
    if Divergence.block_divergent div outer.l_preheader then
      refuse "the staging point is under divergent control flow";
    (* Everything the copy-in references must be available in the
       preheader. *)
    let anchor =
      match outer.l_preheader.term with
      | Some t -> t
      | None -> refuse "the staging point has no terminator"
    in
    let needed =
      ptr :: up_factors p.pbase
      @ List.concat_map (fun s -> up_factors s.s_coeff) slots
    in
    List.iter
      (fun v ->
        if not (available dom anchor (Hashtbl.create 8) v) then
          refuse "'%s' is not available at the staging point" (vname v))
      needed;
    Ok
      { c_load = load; c_ptr = ptr; c_name = buffer_name ptr ^ "_tile";
        c_elem = elem; c_base = p.pbase; c_slots = slots; c_dims = dims;
        c_bytes = bytes; c_reuse = reuse; c_outer = outer }
  with Refuse msg -> Error msg

(* -- Application ------------------------------------------------------------ *)

(* Row-major strides for the tile shape, matching {!Grover_core.Index}. *)
let strides (dims : int list) : int list =
  fst
    (List.fold_left
       (fun (acc, run) d -> (run :: acc, run * d))
       ([], 1) (List.rev dims))

let apply (fn : func) (cands : cand list) : unit =
  let dom = Dom.compute fn in
  (* Group candidates staged at the same point so they share one barrier
     pair, as a hand-written kernel would. *)
  let groups =
    List.fold_left
      (fun groups c ->
        let ph = c.c_outer.l_preheader in
        match List.assoc_opt ph.bid groups with
        | Some (b, cs) ->
            (ph.bid, (b, cs @ [ c ])) :: List.remove_assoc ph.bid groups
        | None -> (ph.bid, (ph, [ c ])) :: groups)
      [] cands
    |> List.rev_map snd
  in
  let e = entry fn in
  let add_tile (c : cand) : instr =
    let count = List.fold_left ( * ) 1 c.c_dims in
    let tile =
      fresh_instr
        (Alloca
           { aspace = Local; elem = c.c_elem; count; dims = c.c_dims;
             aname = c.c_name })
    in
    (match e.instrs with
    | first :: _ -> insert_before e ~before:first tile
    | [] -> (
        match e.term with
        | Some t -> insert_before e ~before:t tile
        | None -> append_instr e tile));
    tile
  in
  List.iter
    (fun ((ph : block), cs) ->
      let term = match ph.term with Some t -> t | None -> assert false in
      let emit op =
        let i = fresh_instr op in
        insert_before ph ~before:term i;
        Vinstr i
      in
      let to_i32 v =
        match type_of v with
        | I32 -> v
        | I1 | I8 | I16 -> emit (Cast (Sext, v, I32))
        | I64 -> emit (Cast (Trunc, v, I32))
        | _ -> invalid_arg "promote: non-integer index component"
      in
      (* Re-materialise values that do not dominate the staging point from
         pure, execution-constant chains (planning verified feasibility). *)
      let memo : (int, value) Hashtbl.t = Hashtbl.create 8 in
      let rec resolve (v : value) : value =
        match v with
        | Cint _ | Cfloat _ | Arg _ -> v
        | Vinstr i -> (
            if Dom.def_dominates_use dom ~def:i ~use:term then v
            else
              match Hashtbl.find_opt memo i.iid with
              | Some r -> r
              | None ->
                  (match i.op with
                  | Phi _ | Load _ | Store _ | Alloca _ | Br _ | Cond_br _
                  | Ret | Barrier _ ->
                      invalid_arg "promote: unavailable value slipped planning"
                  | _ -> ());
                  let r = emit (map_operands ~f:resolve i.op) in
                  Hashtbl.replace memo i.iid r;
                  r)
      in
      let mat_up (p : upoly) : value =
        let term_v (t : uterm) : value =
          let c = match Q.to_int t.uc with Some c -> c | None -> assert false in
          match t.ufac with
          | [] -> Cint (I32, c)
          | f0 :: rest ->
              let base =
                List.fold_left
                  (fun acc f -> emit (Binop (Mul, acc, to_i32 (resolve f))))
                  (to_i32 (resolve f0))
                  rest
              in
              if c = 1 then base else emit (Binop (Mul, base, Cint (I32, c)))
        in
        match p with
        | [] -> Cint (I32, 0)
        | t0 :: rest ->
            List.fold_left
              (fun acc t -> emit (Binop (Add, acc, term_v t)))
              (term_v t0) rest
      in
      let lids : (int, value) Hashtbl.t = Hashtbl.create 4 in
      let lid d =
        match Hashtbl.find_opt lids d with
        | Some v -> v
        | None ->
            let v =
              emit
                (Call
                   { callee = "get_local_id"; args = [ Cint (I32, d) ];
                     ret = I32 })
            in
            Hashtbl.replace lids d v;
            v
      in
      let sum = function
        | [] -> Cint (I32, 0)
        | t0 :: rest ->
            List.fold_left (fun acc t -> emit (Binop (Add, acc, t))) t0 rest
      in
      ignore (emit (Barrier { blocal = true; bglobal = false }));
      let tiles =
        List.map
          (fun c ->
            let tile = add_tile c in
            let sts = strides c.c_dims in
            (* Each work-item stages the element named by its own local
               coordinates: flat tile index Σ lid(dim)·stride ... *)
            let tile_idx =
              sum
                (List.map2
                   (fun s st ->
                     let l = lid s.s_dim in
                     if st = 1 then l else emit (Binop (Mul, l, Cint (I32, st))))
                   c.c_slots sts)
            in
            (* ... read from the matching global address base + Σ
               lid(dim)·coeff — exactly the footprint the original loads
               cover over one execution of the tiled loop nest. *)
            let gterms =
              List.map
                (fun s ->
                  let l = lid s.s_dim in
                  match mat_up s.s_coeff with
                  | Cint (I32, 1) -> l
                  | cv -> emit (Binop (Mul, l, cv)))
                c.c_slots
            in
            let gidx =
              match mat_up c.c_base with
              | Cint (I32, 0) -> sum gterms
              | b -> sum (b :: gterms)
            in
            let ld = emit (Load { ptr = c.c_ptr; index = gidx }) in
            ignore (emit (Store { ptr = Vinstr tile; index = tile_idx; v = ld }));
            (c, tile))
          cs
      in
      ignore (emit (Barrier { blocal = true; bglobal = false }));
      (* Rewrite each reuse load to hit its tile. *)
      List.iter
        (fun ((c : cand), tile) ->
          let lblock = match c.c_load.parent with Some b -> b | None -> assert false in
          let emitl op =
            let i = fresh_instr op in
            insert_before lblock ~before:c.c_load i;
            Vinstr i
          in
          let to_i32l v =
            match type_of v with
            | I32 -> v
            | I1 | I8 | I16 -> emitl (Cast (Sext, v, I32))
            | I64 -> emitl (Cast (Trunc, v, I32))
            | _ -> invalid_arg "promote: non-integer tile coordinate"
          in
          let sts = strides c.c_dims in
          let terms =
            List.map2
              (fun s st ->
                let v = to_i32l s.s_var.v_value in
                if st = 1 then v else emitl (Binop (Mul, v, Cint (I32, st))))
              c.c_slots sts
          in
          let tidx =
            match terms with
            | [] -> Cint (I32, 0)
            | t0 :: rest ->
                List.fold_left (fun acc t -> emitl (Binop (Add, acc, t))) t0 rest
          in
          let ntl = fresh_instr (Load { ptr = Vinstr tile; index = tidx }) in
          insert_before lblock ~before:c.c_load ntl;
          replace_uses fn ~target:(Vinstr c.c_load) ~by:(Vinstr ntl))
        tiles)
    groups

(* -- Driver ------------------------------------------------------------------ *)

type outcome = {
  promoted : (string * int) list;  (** tile name, reuse factor *)
  p_rejected : (string * string) list;  (** load's buffer name, reason *)
  tile_bytes : int;  (** local bytes added by this run *)
}

let no_candidates = { promoted = []; p_rejected = []; tile_bytes = 0 }

let existing_local_bytes (fn : func) : int =
  fold_instrs
    (fun acc i ->
      match i.op with
      | Alloca { aspace = Local; elem; count; _ } ->
          acc + (count * ty_size_bytes elem)
      | _ -> acc)
    0 fn

let is_global_load (i : instr) : bool =
  match i.op with
  | Load { ptr; _ } -> (
      match type_of (unwrap_ptr ptr) with
      | Ptr ((Global | Constant), _) -> true
      | _ -> false)
  | _ -> false

let emit_remarks (ctx : Pass.ctx option) (fn : func) (o : outcome) : unit =
  match ctx with
  | None -> ()
  | Some c ->
      List.iter
        (fun (name, reuse) ->
          Pass.remarkf c ~pass:"promote-lm"
            "%s: staged '%s' through local memory (reuse factor %d)"
            fn.f_name name reuse)
        o.promoted;
      List.iter
        (fun (name, reason) ->
          Pass.remarkf c ~pass:"promote-lm" "%s: kept global load of '%s': %s"
            fn.f_name name reason)
        o.p_rejected

(** Promote group-wise reused global loads of [fn] to `__local` tiles, in
    place. The local-size box comes from {!Grover_analysis.Config.box_for}
    (drivers install the real one via [Config.with_local]).

    @param only restrict promotion to loads from these buffer names. *)
let run ?(only : string list option) ?(ctx : Pass.ctx option) (fn : func) :
    outcome =
  Atom.assign_phi_names fn;
  let box, _assumed = Config.box_for fn in
  let div = Divergence.compute fn in
  let dom = Dom.compute fn in
  let loops = find_loops fn in
  let selected name =
    match only with None -> true | Some names -> List.mem name names
  in
  let budget = ref (local_budget_bytes - existing_local_bytes fn) in
  let plans, rejected =
    fold_instrs
      (fun (plans, rejected) i ->
        if not (is_global_load i) then (plans, rejected)
        else
          let name =
            match i.op with Load { ptr; _ } -> buffer_name ptr | _ -> "global"
          in
          if not (selected name) then (plans, rejected)
          else
            match plan_load ~dom ~div ~loops ~box i with
            | Error reason -> (plans, (name, reason) :: rejected)
            | Ok c ->
                if c.c_bytes > !budget then
                  (plans, (name, "exceeds the local memory budget") :: rejected)
                else begin
                  budget := !budget - c.c_bytes;
                  (c :: plans, rejected)
                end)
      ([], []) fn
  in
  let plans = List.rev plans and rejected = List.rev rejected in
  if plans = [] then begin
    let o = { no_candidates with p_rejected = rejected } in
    emit_remarks ctx fn o;
    o
  end
  else begin
    apply fn plans;
    Passes.Pipeline.cleanup ?ctx fn;
    Verify.run fn;
    let o =
      {
        promoted = List.map (fun c -> (c.c_name, c.c_reuse)) plans;
        p_rejected = rejected;
        tile_bytes = List.fold_left (fun a c -> a + c.c_bytes) 0 plans;
      }
    in
    emit_remarks ctx fn o;
    o
  end

(** Promotion as a registered pass ("promote-lm"), mirroring "grover": the
    boolean is "did anything get staged". *)
let pass : Pass.t =
  Pass.register
    (Pass.make "promote-lm"
       ~descr:"stage reused global loads through __local tiles (Grover in reverse)"
       (fun ctx fn ->
         let o = run ~ctx fn in
         o.promoted <> []))
