(** The registered correctness passes and the combined [analyze] pipeline.

    Three analysis passes (they never change the IR):

    - [barrier-check]: every barrier must be reached uniformly by the
      work-items of a group ([GRV-BARRIER-DIV] on violation);
    - [race-check]: per-[__local]-buffer race verdicts ([GRV-RACE-MUST] /
      [GRV-RACE-MAY] / [GRV-RACE-FREE]);
    - [bounds-check]: affine indices vs declared extents
      ([GRV-OOB-STATIC]).

    Severity policy: a definite finding is an error when the work-group
    size is known (installed via {!Config.with_local}) and a warning when
    it had to be assumed — an assumed box can flag accesses a smaller real
    work-group never makes. *)

open Grover_ir
module Pass = Grover_passes.Pass
module Diag = Grover_support.Diag
module Loc = Grover_support.Loc

let loc_opt (i : Ssa.instr) : Loc.t option =
  if Loc.is_dummy i.Ssa.iloc then None else Some i.Ssa.iloc

let box_note ~(assumed : bool) ((x, y, z) : int * int * int) : string =
  if assumed then
    Printf.sprintf
      " (assuming a %dx%dx%d work-group; pass the real local size for a \
       definitive verdict)"
      x y z
  else ""

let barrier_check =
  Pass.register
    (Pass.make "barrier-check"
       ~descr:"check that every barrier is reached uniformly" (fun c fn ->
         let div = Divergence.compute fn in
         let total = ref 0 and bad = ref 0 in
         Ssa.iter_instrs
           (fun i ->
             match i.Ssa.op with
             | Ssa.Barrier _ ->
                 incr total;
                 let divergent =
                   match i.Ssa.parent with
                   | Some b -> Divergence.block_divergent div b
                   | None -> false
                 in
                 if divergent then begin
                   incr bad;
                   Pass.errf c ?loc:(loc_opt i) ~code:"GRV-BARRIER-DIV"
                     ~pass:"barrier-check"
                     "barrier inside work-item-dependent control flow: not \
                      every work-item of the group is guaranteed to reach it"
                 end
             | _ -> ())
           fn;
         if !total > 0 && !bad = 0 then
           Pass.remarkf c ~code:"GRV-BARRIER-OK" ~pass:"barrier-check"
             "%s: all %d barrier%s reached uniformly" fn.Ssa.f_name !total
             (if !total = 1 then "" else "s");
         false))

let race_check =
  Pass.register
    (Pass.make "race-check"
       ~descr:"classify every __local buffer as must/may/race-free" (fun c fn ->
         let reports, box, assumed = Race.analyse fn in
         let note = box_note ~assumed box in
         List.iter
           (fun (r : Race.report) ->
             let loc = if Loc.is_dummy r.r_loc then None else Some r.r_loc in
             match r.r_verdict with
             | Race.Must_race ->
                 let emit = if assumed then Pass.warnf else Pass.errf in
                 emit c ?loc ~code:"GRV-RACE-MUST" ~pass:"race-check"
                   "data race on __local buffer '%s': %s%s" r.r_name r.r_detail
                   note
             | Race.May_race ->
                 Pass.warnf c ?loc ~code:"GRV-RACE-MAY" ~pass:"race-check"
                   "possible data race on __local buffer '%s': %s%s" r.r_name
                   r.r_detail note
             | Race.Race_free ->
                 Pass.remarkf c ?loc ~code:"GRV-RACE-FREE" ~pass:"race-check"
                   "__local buffer '%s' is race-free (%d access%s analysed)%s"
                   r.r_name r.r_accesses
                   (if r.r_accesses = 1 then "" else "es")
                   note)
           reports;
         false))

let bounds_check =
  Pass.register
    (Pass.make "bounds-check"
       ~descr:"check affine indices against declared buffer extents"
       (fun c fn ->
         let findings, box, assumed = Bounds.check fn in
         let note = box_note ~assumed box in
         List.iter
           (fun (f : Bounds.finding) ->
             let loc = if Loc.is_dummy f.b_loc then None else Some f.b_loc in
             let emit =
               if f.b_exact && not assumed then Pass.errf else Pass.warnf
             in
             emit c ?loc ~code:"GRV-OOB-STATIC" ~pass:"bounds-check"
               "out-of-bounds %s on buffer '%s': work-item %s accesses element \
                %d of %d%s"
               (if f.b_store then "store" else "load")
               f.b_name (Race.pp_wi f.b_wi) f.b_index f.b_count note)
           findings;
         false))

let analyze_pass =
  Pass.register
    (Pass.seq "analyze"
       ~descr:"static kernel legality: barrier-check, race-check, bounds-check"
       [ barrier_check; race_check; bounds_check ])

(** Run the full static-analysis pipeline on (already normalised) [fn],
    optionally under a known work-group size. *)
let analyze ?(local_size : (int * int * int) option) (c : Pass.ctx)
    (fn : Ssa.func) : unit =
  Config.with_local local_size (fun () -> ignore (Pass.run_pass c analyze_pass fn))

(** Collapse a diagnostic list into the legality verdict recorded per
    Table-III candidate. *)
let legality (ds : Diag.t list) : string =
  let has code = List.exists (fun d -> d.Diag.code = Some code) ds in
  if has "GRV-BARRIER-DIV" then "barrier-divergent"
  else if has "GRV-RACE-MUST" then "must-race"
  else if has "GRV-OOB-STATIC" then "out-of-bounds"
  else if has "GRV-RACE-MAY" then "may-race"
  else "race-free"
