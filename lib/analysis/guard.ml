(** Branch guards that constrain the local thread ids at a block.

    For a block [B], every strictly dominating conditional branch whose
    taken side leads unavoidably to [B] contributes its condition (or its
    negation) as a fact that holds whenever a work-item executes [B] —
    e.g. the store under [if (lx < 2)] in a halo-staging stencil.

    Only conditions that are signed integer comparisons of affine forms in
    the local thread ids convert to guards; anything else is dropped. The
    [exact] flag reports whether a *divergent* condition was dropped: a
    dropped divergent guard over-approximates the set of work-items that
    reach [B], which keeps race-free/no-OOB verdicts sound but downgrades
    a found must-race witness to a may-race. *)

open Grover_ir
open Grover_core
module Form = Atom.Form
module R = Grover_support.Rational

type t = { g_pred : Ssa.icmp; g_form : Form.t }
(** The fact [g_form `g_pred` 0], with [g_form] affine in lid atoms. *)

let negate_pred = function
  | Ssa.Ieq -> Some Ssa.Ine
  | Ssa.Ine -> Some Ssa.Ieq
  | Ssa.Islt -> Some Ssa.Isge
  | Ssa.Isge -> Some Ssa.Islt
  | Ssa.Isle -> Some Ssa.Isgt
  | Ssa.Isgt -> Some Ssa.Isle
  | Ssa.Iult | Ssa.Iule | Ssa.Iugt | Ssa.Iuge -> None

let signed = function
  | Ssa.Ieq | Ssa.Ine | Ssa.Islt | Ssa.Isle | Ssa.Isgt | Ssa.Isge -> true
  | _ -> false

let convert (pred : Ssa.icmp) (a : Ssa.value) (b : Ssa.value) : t option =
  if not (signed pred) then None
  else
    match (Affine_index.form_of a, Affine_index.form_of b) with
    | Some fa, Some fb ->
        let f = Form.sub fa fb in
        if List.for_all Atom.is_lid (Form.atoms f) then
          Some { g_pred = pred; g_form = f }
        else None
    | _ -> None

(** Guards holding at [b], and whether the set is exact (no divergent
    condition was dropped along the way). *)
let at (dom : Dom.t) (div : Divergence.t) (b : Ssa.block) : t list * bool =
  let guards = ref [] and exact = ref true in
  let cfg = dom.Dom.cfg in
  (* [target] guards [b] if every path from the branch to [b] runs through
     it: target dominates b, and target is entered only from the branch
     block (loop back-edges from inside target's own region are fine). *)
  let guards_b d target =
    Dom.dominates dom target b
    && List.for_all
         (fun p -> p.Ssa.bid = d.Ssa.bid || Dom.dominates dom target p)
         (Cfg.preds cfg target)
  in
  List.iter
    (fun d ->
      if d.Ssa.bid <> b.Ssa.bid then
        match d.Ssa.term with
        | Some { op = Ssa.Cond_br (c, tt, ee); _ } when tt.Ssa.bid <> ee.Ssa.bid
          ->
            let take g =
              match g with
              | Some g -> guards := g :: !guards
              | None -> if Divergence.value_divergent div c then exact := false
            in
            let cond_parts =
              match c with
              | Ssa.Vinstr { op = Ssa.Icmp (p, x, y); _ } -> Some (p, x, y)
              | _ -> None
            in
            if guards_b d tt then
              take
                (Option.bind cond_parts (fun (p, x, y) -> convert p x y))
            else if guards_b d ee then
              take
                (Option.bind cond_parts (fun (p, x, y) ->
                     Option.bind (negate_pred p) (fun np -> convert np x y)))
        | _ -> ())
    (Dom.dominators dom b);
  (!guards, !exact)

(** Evaluate an affine-in-lids form at a concrete work-item. *)
let eval_at (f : Form.t) ((x, y, z) : int * int * int) : R.t =
  Form.fold
    (fun a c acc ->
      let lv =
        match Atom.lid_dim a with
        | Some 0 -> x
        | Some 1 -> y
        | Some 2 -> z
        | _ -> 0
      in
      R.add acc (R.mul c (R.of_int lv)))
    f (Form.constant f)

let holds (g : t) ~(lids : int * int * int) : bool =
  let s = R.sign (eval_at g.g_form lids) in
  match g.g_pred with
  | Ssa.Islt -> s < 0
  | Ssa.Isle -> s <= 0
  | Ssa.Isgt -> s > 0
  | Ssa.Isge -> s >= 0
  | Ssa.Ieq -> s = 0
  | Ssa.Ine -> s <> 0
  | Ssa.Iult | Ssa.Iule | Ssa.Iugt | Ssa.Iuge -> true

let all_hold (gs : t list) ~(lids : int * int * int) : bool =
  List.for_all (fun g -> holds g ~lids) gs
