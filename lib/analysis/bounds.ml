(** Static bounds check for affine accesses to fixed-extent buffers.

    Covers every load/store whose pointer is an alloca (local or private
    arrays — the buffers whose extents the IR declares) and whose index is
    affine in the local thread ids with a constant remainder. The index is
    then evaluated at every work-item of the {!Config} box that satisfies
    the access's branch {!Guard}s; any value outside [0, count) is an
    out-of-bounds finding with a concrete work-item witness.

    Indices with argument- or loop-dependent parts are left to the dynamic
    sanitizer — a static verdict would be guesswork. *)

open Grover_ir
open Grover_core
module Form = Atom.Form
module R = Grover_support.Rational
module Loc = Grover_support.Loc

type finding = {
  b_loc : Loc.t;  (** access location *)
  b_name : string;  (** buffer source name *)
  b_store : bool;
  b_index : int;  (** offending element index *)
  b_count : int;  (** declared extent in elements *)
  b_wi : int * int * int;  (** witness work-item *)
  b_exact : bool;  (** guards were exact (no divergent guard dropped) *)
}

let check (fn : Ssa.func) : finding list * (int * int * int) * bool =
  let box, assumed = Config.box_for fn in
  let bx, by, bz = box in
  let findings = ref [] in
  if bx * by * bz <= Config.max_box_volume then begin
    let div = Divergence.compute fn in
    let dom = Dom.compute fn in
    let guard_cache = Hashtbl.create 16 in
    let guards_of (b : Ssa.block) =
      match Hashtbl.find_opt guard_cache b.Ssa.bid with
      | Some g -> g
      | None ->
          let g = Guard.at dom div b in
          Hashtbl.add guard_cache b.Ssa.bid g;
          g
    in
    let check_access (i : Ssa.instr) ~(store : bool) (ptr : Ssa.value)
        (index : Ssa.value) : unit =
      match ptr with
      | Ssa.Vinstr { op = Ssa.Alloca { count; aname; _ }; _ } -> (
          match Affine_index.form_of index with
          | None -> ()
          | Some f -> (
              let lid_part, rest = Affine_index.split_lid f in
              match Form.to_const rest with
              | None -> ()
              | Some rc ->
                  let guards, exact =
                    match i.Ssa.parent with
                    | Some b -> guards_of b
                    | None -> ([], false)
                  in
                  let hit = ref None in
                  Race.iter_box box (fun l ->
                      if !hit = None && Guard.all_hold guards ~lids:l then begin
                        let v = R.add (Guard.eval_at lid_part l) rc in
                        match R.to_int v with
                        | Some idx when idx < 0 || idx >= count ->
                            hit := Some (idx, l)
                        | _ -> ()
                      end);
                  match !hit with
                  | None -> ()
                  | Some (idx, l) ->
                      findings :=
                        {
                          b_loc = i.Ssa.iloc;
                          b_name =
                            (if aname <> "" then aname
                             else Printf.sprintf "local.%d" i.Ssa.iid);
                          b_store = store;
                          b_index = idx;
                          b_count = count;
                          b_wi = l;
                          b_exact = exact;
                        }
                        :: !findings))
      | _ -> ()
    in
    Ssa.iter_instrs
      (fun i ->
        match i.Ssa.op with
        | Ssa.Load { ptr; index } -> check_access i ~store:false ptr index
        | Ssa.Store { ptr; index; _ } -> check_access i ~store:true ptr index
        | _ -> ())
      fn
  end;
  (List.rev !findings, box, assumed)
