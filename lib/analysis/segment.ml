(** Barrier-interval segmentation of a kernel CFG.

    A segment is a maximal barrier-free run of instructions inside one
    basic block; a block with [k] barriers contributes [k+1] segments.
    Segment edges follow CFG edges (last segment of a block to the first
    segment of each successor) — there is deliberately *no* edge across a
    barrier, so "reachable in the segment graph" means "reachable without
    passing a barrier".

    Two accesses by *different* work-items of one group can be unordered
    exactly when their segments lie in a common barrier interval. An
    interval starts at an epoch-start segment — the entry segment (kernel
    launch) or any segment that begins just after a barrier — so

      [concurrent a b  =  ∃ epoch-start s. reach s a ∧ reach s b].

    This is sound provided every barrier is reached uniformly, which
    {!Divergence} checks separately; with divergent barriers the caller
    must fall back to "everything is concurrent". *)

open Grover_ir

type t = {
  n_segs : int;
  of_instr : (int, int) Hashtbl.t;  (** iid -> segment id *)
  starts : int list;  (** epoch-start segment ids *)
  reach : (int, bool array) Hashtbl.t;  (** start id -> reachable segments *)
}

let compute (fn : Ssa.func) : t =
  let next = ref 0 in
  let of_instr = Hashtbl.create 64 in
  let first_of_block = Hashtbl.create 16 in
  let last_of_block = Hashtbl.create 16 in
  let seg_block = Hashtbl.create 16 in
  let starts = ref [] in
  let entry_bid = (Ssa.entry fn).Ssa.bid in
  List.iter
    (fun b ->
      let fresh pos =
        let id = !next in
        incr next;
        Hashtbl.replace seg_block id b;
        if pos = 0 then Hashtbl.replace first_of_block b.Ssa.bid id;
        Hashtbl.replace last_of_block b.Ssa.bid id;
        if pos > 0 || b.Ssa.bid = entry_bid then starts := id :: !starts;
        id
      in
      let pos = ref 0 in
      let cur = ref (fresh 0) in
      List.iter
        (fun i ->
          match i.Ssa.op with
          | Ssa.Barrier _ ->
              incr pos;
              cur := fresh !pos
          | _ -> Hashtbl.replace of_instr i.Ssa.iid !cur)
        (Ssa.all_instrs b))
    fn.Ssa.blocks;
  let succs id =
    let b = Hashtbl.find seg_block id in
    if Hashtbl.find last_of_block b.Ssa.bid = id then
      List.filter_map
        (fun s -> Hashtbl.find_opt first_of_block s.Ssa.bid)
        (Ssa.successors b)
    else []
  in
  let reach = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let r = Array.make !next false in
      let rec dfs id =
        if not r.(id) then begin
          r.(id) <- true;
          List.iter dfs (succs id)
        end
      in
      dfs s;
      Hashtbl.replace reach s r)
    !starts;
  { n_segs = !next; of_instr; starts = !starts; reach }

let segment_of (t : t) (i : Ssa.instr) : int option =
  Hashtbl.find_opt t.of_instr i.Ssa.iid

(** Can two work-items of one group execute segments [a] and [b] within
    the same barrier interval? Reflexive: any segment is concurrent with
    itself (two work-items run it side by side). *)
let concurrent (t : t) (a : int) (b : int) : bool =
  List.exists
    (fun s ->
      let r = Hashtbl.find t.reach s in
      r.(a) && r.(b))
    t.starts
