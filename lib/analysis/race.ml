(** Static local-memory race analysis (the legality half of Grover).

    For every [__local] alloca, every pair of accesses with at least one
    store that can execute in the same barrier interval ({!Segment}) is
    tested for index overlap between two *distinct* work-items:

    - both index expressions must be affine ({!Affine_index.form_of});
    - the non-thread-id remainder of each form may only mention values
      that are provably equal across the work-items of one group — kernel
      arguments and launch-geometry builtins. A loop phi or a loaded
      value in an index defeats the comparison (two work-items can sit at
      different loop iterations inside one barrier-free interval), so the
      pair degrades to a may-race;
    - the remainder difference must fold to a rational constant [D]; the
      pair then races iff some [l1 ≠ l2] inside the work-group box (and
      satisfying each side's branch {!Guard}s) solves
      [lid_a(l1) - lid_b(l2) = D]. The solver enumerates one side into a
      hash table keyed by exact rational index value and probes it with
      the other — O(box) instead of O(box²).

    Verdicts per buffer: [Must_race] (a concrete work-item pair is
    reported), [May_race] (analysis gave up or guards were inexact), or
    [Race_free]. A Grover-transformed kernel has no local allocas left,
    so it is trivially race-free. *)

open Grover_ir
open Grover_core
module Form = Atom.Form
module R = Grover_support.Rational
module Loc = Grover_support.Loc

type verdict = Must_race | May_race | Race_free

type report = {
  r_name : string;  (** source name of the local buffer *)
  r_verdict : verdict;
  r_loc : Loc.t;  (** location to attach the diagnostic to *)
  r_detail : string;  (** witness pair or reason, human-readable *)
  r_accesses : int;  (** accesses analysed for this buffer *)
}

type access = {
  ac_instr : Ssa.instr;
  ac_store : bool;
  ac_form : Form.t option;
  ac_seg : int option;
  ac_guards : Guard.t list;
  ac_exact : bool;
}

(* Values equal across all work-items of one group for a whole launch. *)
let launch_const_call = function
  | "get_group_id" | "get_local_size" | "get_global_size" | "get_num_groups"
  | "get_work_dim" ->
      true
  | _ -> false

let shared_atom (v : Ssa.value) : bool =
  match v with
  | Ssa.Arg _ -> true
  | Ssa.Vinstr { op = Ssa.Call { callee; _ }; _ } -> launch_const_call callee
  | _ -> false

let pp_wi (x, y, z) = Printf.sprintf "(%d,%d,%d)" x y z

let line_of (i : Ssa.instr) : string =
  if Loc.is_dummy i.Ssa.iloc then "?" else string_of_int i.Ssa.iloc.Loc.line

(* -- The pair test --------------------------------------------------------- *)

type pair_result =
  | Pr_free
  | Pr_may of string
  | Pr_must of string  (** rendered witness *)

let iter_box ((bx, by, bz) : int * int * int) (f : int * int * int -> unit) :
    unit =
  for z = 0 to bz - 1 do
    for y = 0 to by - 1 do
      for x = 0 to bx - 1 do
        f (x, y, z)
      done
    done
  done

(* Find l1 <> l2 in [box] with [la l1 - lb l2 = d], each side satisfying
   its guards. Buckets cap at two work-items: one suffices unless it is
   the probe itself. *)
let find_pair ~box ~(ga : Guard.t list) ~(gb : Guard.t list) ~(la : Form.t)
    ~(lb : Form.t) ~(d : R.t) :
    ((int * int * int) * (int * int * int)) option =
  let tbl : (R.t, (int * int * int) list) Hashtbl.t = Hashtbl.create 97 in
  iter_box box (fun l ->
      if Guard.all_hold ga ~lids:l then
        let k = Guard.eval_at la l in
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.add tbl k [ l ]
        | Some [ l0 ] when l0 <> l -> Hashtbl.replace tbl k [ l0; l ]
        | Some _ -> ());
  let found = ref None in
  iter_box box (fun l2 ->
      if !found = None && Guard.all_hold gb ~lids:l2 then
        let k = R.add (Guard.eval_at lb l2) d in
        match Hashtbl.find_opt tbl k with
        | Some bucket -> (
            match List.find_opt (fun l1 -> l1 <> l2) bucket with
            | Some l1 -> found := Some (l1, l2)
            | None -> ())
        | None -> ());
  !found

let analyse_pair (a : access) (b : access) ~(box : int * int * int) :
    pair_result =
  match (a.ac_form, b.ac_form) with
  | None, _ | _, None -> Pr_may "a non-affine index expression"
  | Some fa, Some fb -> (
      let la, ra = Affine_index.split_lid fa in
      let lb, rb = Affine_index.split_lid fb in
      let unshared f =
        List.filter (fun at -> not (shared_atom at)) (Form.atoms f)
      in
      match unshared ra @ unshared rb with
      | at :: _ ->
          Pr_may
            (Printf.sprintf
               "an index depending on '%s', which two work-items may evaluate \
                differently within one barrier interval"
               (Atom.name at))
      | [] -> (
          (* idxA = la(l1) + ra, idxB = lb(l2) + rb: equality means
             la(l1) - lb(l2) = rb - ra. *)
          match Form.to_const (Form.sub rb ra) with
          | None ->
              Pr_may
                "index offsets that differ by an unknown argument-dependent \
                 amount"
          | Some d -> (
              let bx, by, bz = box in
              if bx * by * bz > Config.max_box_volume then
                Pr_may "a work-group too large to enumerate"
              else
                match
                  find_pair ~box ~ga:a.ac_guards ~gb:b.ac_guards ~la ~lb ~d
                with
                | None -> Pr_free
                | Some (l1, l2) ->
                    let w =
                      Printf.sprintf
                        "work-items %s and %s access the same element (%s at \
                         line %s, %s at line %s) in one barrier interval"
                        (pp_wi l1) (pp_wi l2)
                        (if a.ac_store then "store" else "load")
                        (line_of a.ac_instr)
                        (if b.ac_store then "store" else "load")
                        (line_of b.ac_instr)
                    in
                    if a.ac_exact && b.ac_exact then Pr_must w
                    else Pr_may (w ^ ", under dropped branch guards"))))

(* -- Per-buffer analysis ---------------------------------------------------- *)

(* Does the alloca value appear anywhere other than as the [ptr] of a
   load/store? If so the buffer escapes the index analysis. *)
let escapes (fn : Ssa.func) (a : Ssa.instr) : bool =
  let is_a v = match v with Ssa.Vinstr i -> i.Ssa.iid = a.Ssa.iid | _ -> false in
  Ssa.fold_instrs
    (fun acc i ->
      acc
      ||
      match i.Ssa.op with
      | Ssa.Load { ptr = _; index } -> is_a index
      | Ssa.Store { ptr = _; index; v } -> is_a index || is_a v
      | op -> List.exists is_a (Ssa.operands op))
    false fn

let local_allocas (fn : Ssa.func) : Ssa.instr list =
  Ssa.fold_instrs
    (fun acc i ->
      match i.Ssa.op with
      | Ssa.Alloca { aspace = Ssa.Local; _ } -> i :: acc
      | _ -> acc)
    [] fn
  |> List.rev

let accesses_of (fn : Ssa.func) (a : Ssa.instr) ~(seg : Segment.t)
    ~(dom : Dom.t) ~(div : Divergence.t) : access list =
  let guard_cache = Hashtbl.create 16 in
  let guards_of (b : Ssa.block) =
    match Hashtbl.find_opt guard_cache b.Ssa.bid with
    | Some g -> g
    | None ->
        let g = Guard.at dom div b in
        Hashtbl.add guard_cache b.Ssa.bid g;
        g
  in
  let points_here v =
    match v with Ssa.Vinstr i -> i.Ssa.iid = a.Ssa.iid | _ -> false
  in
  Ssa.fold_instrs
    (fun acc i ->
      let mk ~store index =
        let guards, exact =
          match i.Ssa.parent with
          | Some b -> guards_of b
          | None -> ([], false)
        in
        {
          ac_instr = i;
          ac_store = store;
          ac_form = Affine_index.form_of index;
          ac_seg = Segment.segment_of seg i;
          ac_guards = guards;
          ac_exact = exact;
        }
        :: acc
      in
      match i.Ssa.op with
      | Ssa.Load { ptr; index } when points_here ptr -> mk ~store:false index
      | Ssa.Store { ptr; index; _ } when points_here ptr -> mk ~store:true index
      | _ -> acc)
    [] fn
  |> List.rev

let name_of_alloca (a : Ssa.instr) : string =
  match a.Ssa.op with
  | Ssa.Alloca { aname; _ } when aname <> "" -> aname
  | _ -> Printf.sprintf "local.%d" a.Ssa.iid

let analyse_buffer (fn : Ssa.func) (a : Ssa.instr) ~(seg : Segment.t)
    ~(dom : Dom.t) ~(div : Divergence.t) ~(box : int * int * int)
    ~(barriers_uniform : bool) : report =
  let name = name_of_alloca a in
  let accs = accesses_of fn a ~seg ~dom ~div in
  let finish verdict loc detail =
    {
      r_name = name;
      r_verdict = verdict;
      r_loc = loc;
      r_detail = detail;
      r_accesses = List.length accs;
    }
  in
  if escapes fn a then
    finish May_race a.Ssa.iloc
      "the buffer address escapes the load/store index analysis"
  else if not barriers_uniform then
    finish May_race a.Ssa.iloc
      "barrier divergence defeats the barrier-interval analysis"
  else begin
    (* Worst pair wins: any must-race witness beats any may, beats free. *)
    let worst = ref Pr_free and worst_loc = ref a.Ssa.iloc in
    let consider (x : access) (y : access) =
      match !worst with
      | Pr_must _ -> ()
      | _ ->
          let conc =
            match (x.ac_seg, y.ac_seg) with
            | Some sa, Some sb -> Segment.concurrent seg sa sb
            | _ -> true
          in
          if conc then
            match analyse_pair x y ~box with
            | Pr_free -> ()
            | Pr_may _ as r ->
                if !worst = Pr_free then begin
                  worst := r;
                  worst_loc := y.ac_instr.Ssa.iloc
                end
            | Pr_must _ as r ->
                worst := r;
                worst_loc := y.ac_instr.Ssa.iloc
    in
    let rec pairs = function
      | [] -> ()
      | x :: rest ->
          if x.ac_store then consider x x;
          List.iter (fun y -> if x.ac_store || y.ac_store then consider x y) rest;
          pairs rest
    in
    pairs accs;
    match !worst with
    | Pr_free -> finish Race_free a.Ssa.iloc "no overlapping pair"
    | Pr_may why -> finish May_race !worst_loc why
    | Pr_must w -> finish Must_race !worst_loc w
  end

(** Analyse every [__local] buffer of [fn] under the current
    {!Config} work-group box. Returns the per-buffer reports, the box
    used, and whether it was assumed rather than supplied. *)
let analyse (fn : Ssa.func) : report list * (int * int * int) * bool =
  let box, assumed = Config.box_for fn in
  let allocas = local_allocas fn in
  if allocas = [] then ([], box, assumed)
  else begin
    let div = Divergence.compute fn in
    let seg = Segment.compute fn in
    let dom = Dom.compute fn in
    let barriers_uniform =
      Ssa.fold_instrs
        (fun ok i ->
          ok
          &&
          match (i.Ssa.op, i.Ssa.parent) with
          | Ssa.Barrier _, Some b -> not (Divergence.block_divergent div b)
          | _ -> true)
        true fn
    in
    ( List.map
        (fun a -> analyse_buffer fn a ~seg ~dom ~div ~box ~barriers_uniform)
        allocas,
      box,
      assumed )
  end
