(** Work-group-size assumptions for the static analyses.

    The race and bounds checks enumerate work-item pairs over the local
    size, which a bare kernel file does not declare. Drivers that know the
    real size (the suite harness, [groverc --local]) install it via
    {!with_local}; otherwise each dimension the kernel actually indexes by
    thread id is assumed to span {!default_dim_size} work-items and the
    emitted diagnostics say so. *)

open Grover_ir

let assumed_local : (int * int * int) option ref = ref None

(** Run [f] with the given local size installed (when [Some]); restores
    the previous assumption afterwards. *)
let with_local (ls : (int * int * int) option) (f : unit -> 'a) : 'a =
  match ls with
  | None -> f ()
  | Some _ ->
      let old = !assumed_local in
      assumed_local := ls;
      Fun.protect ~finally:(fun () -> assumed_local := old) f

let default_dim_size = 16

(* Which dimensions the kernel distinguishes work-items on. Runs on both
   raw and normalised IR: after expand-gids only get_local_id calls
   remain, before it get_global_id counts too. *)
let used_dims (fn : Ssa.func) : bool array =
  let used = Array.make 3 false in
  Ssa.iter_instrs
    (fun i ->
      match i.op with
      | Ssa.Call
          { callee = "get_local_id" | "get_global_id";
            args = [ Ssa.Cint (_, d) ]; _ }
        when d >= 0 && d < 3 ->
          used.(d) <- true
      | _ -> ())
    fn;
  used

(** The local-size box to analyse under, and whether it was assumed
    (true) rather than supplied by the driver (false). *)
let box_for (fn : Ssa.func) : (int * int * int) * bool =
  match !assumed_local with
  | Some b -> (b, false)
  | None ->
      let used = used_dims fn in
      let s d = if used.(d) then default_dim_size else 1 in
      ((s 0, s 1, s 2), true)

(** Enumeration ceiling: boxes beyond this many work-items make the pair
    test give up with a may-race rather than stall the pipeline. *)
let max_box_volume = 65536
