(** Structured diagnostics.

    One record per message, with a severity, an optional source span
    ({!Loc.t}, propagated from the front-end through lowering into the IR),
    the component that produced it (a pass name, "lower", "verify", ...)
    and the text. Replaces the bare [failwith]/[invalid_arg] strings the
    compiler half used to abort with: drivers render a diagnostic either
    as the classic [file:line:col: error: message] line or as JSON for
    machine consumers (the bench/autotune layer). *)

type severity = Remark | Note | Warning | Error

type t = {
  severity : severity;
  loc : Loc.t option;  (** source span, when one is known *)
  file : string option;  (** source file, when the driver knows it *)
  pass : string option;  (** producing component ("lower", "cse", "grover", ...) *)
  code : string option;
      (** stable machine-readable finding code ("GRV-RACE-MUST", ...) so CI
          can grep for a class of diagnostic without parsing prose *)
  message : string;
}

exception Fatal of t
(** Raised for unrecoverable diagnostics (internal invariant violations,
    front-end errors re-wrapped by the driver). Carries the full record so
    the driver can still print [file:line:col: error: ...] and exit 1
    instead of dumping a backtrace. *)

let severity_name = function
  | Remark -> "remark"
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let make ?loc ?file ?pass ?code severity message =
  { severity; loc; file; pass; code; message }

let makef ?loc ?file ?pass ?code severity fmt =
  Format.kasprintf (fun message -> make ?loc ?file ?pass ?code severity message) fmt

let remarkf ?loc ?file ?pass ?code fmt = makef ?loc ?file ?pass ?code Remark fmt
let warningf ?loc ?file ?pass ?code fmt = makef ?loc ?file ?pass ?code Warning fmt
let errorf ?loc ?file ?pass ?code fmt = makef ?loc ?file ?pass ?code Error fmt

let fatalf ?loc ?file ?pass ?code fmt =
  Format.kasprintf
    (fun message -> raise (Fatal (make ?loc ?file ?pass ?code Error message)))
    fmt

let is_error d = d.severity = Error

(** Attach [file] (and/or a location) after the fact — the front-end knows
    the span, only the driver knows the file name. *)
let with_file file d = { d with file = Some file }

let of_loc_error ?file (loc : Loc.t) (message : string) : t =
  make ~loc ?file Error message

(* -- Rendering ------------------------------------------------------------ *)

(** [file:line:col: severity: [pass] message], degrading gracefully when the
    span or file is unknown. *)
let to_string ?file d =
  let file = match file with Some _ as f -> f | None -> d.file in
  let b = Buffer.create 80 in
  (match (file, d.loc) with
  | Some f, Some l when not (Loc.is_dummy l) ->
      Buffer.add_string b (Printf.sprintf "%s:%d:%d: " f l.Loc.line l.Loc.col)
  | Some f, _ -> Buffer.add_string b (f ^ ": ")
  | None, Some l when not (Loc.is_dummy l) ->
      Buffer.add_string b (Printf.sprintf "%d:%d: " l.Loc.line l.Loc.col)
  | None, _ -> ());
  Buffer.add_string b (severity_name d.severity);
  Buffer.add_string b ": ";
  (match d.pass with
  | Some p -> Buffer.add_string b (Printf.sprintf "[%s] " p)
  | None -> ());
  Buffer.add_string b d.message;
  (match d.code with
  | Some c -> Buffer.add_string b (Printf.sprintf " [%s]" c)
  | None -> ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** One JSON object per diagnostic (a JSON-lines stream when printed). *)
let to_json ?file d =
  let file = match file with Some _ as f -> f | None -> d.file in
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  let quote v = "\"" ^ json_escape v ^ "\"" in
  add "severity" (quote (severity_name d.severity));
  (match file with Some f -> add "file" (quote f) | None -> ());
  (match d.loc with
  | Some l when not (Loc.is_dummy l) ->
      add "line" (string_of_int l.Loc.line);
      add "col" (string_of_int l.Loc.col)
  | _ -> ());
  (match d.pass with Some p -> add "pass" (quote p) | None -> ());
  (match d.code with Some c -> add "code" (quote c) | None -> ());
  add "message" (quote d.message);
  "{"
  ^ String.concat ", "
      (List.rev_map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) !fields)
  ^ "}"
