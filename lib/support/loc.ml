(** Source locations for diagnostics.

    Lives in [Grover_support] (the bottom layer) so both the front-end and
    the IR/pass layers can carry locations without depending on the
    front-end; [Grover_clc.Loc] re-exports this module unchanged. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let is_dummy l = l.line = 0 && l.col = 0
let pp ppf { line; col } = Format.fprintf ppf "%d:%d" line col

exception Error of t * string
(** The front-end's single error channel: lexing, parsing and semantic
    errors all carry a location and a human-readable message. *)

let errorf loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt
