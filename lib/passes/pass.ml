(** First-class pass manager.

    Every transform registers here under a stable name with a uniform
    interface: [ctx -> Ssa.func -> bool], where the boolean reports whether
    the function changed. The manager threads a {!ctx} carrying

    - structured diagnostics ({!Grover_support.Diag}), so passes emit
      located errors and Table-III-style remarks instead of ad-hoc strings;
    - per-pass instrumentation: wall-clock time, instruction-count delta,
      changed/unchanged, and optional IR snapshot printing;
    - optional re-verification ([Verify.run]) after every pass.

    Combinators ({!seq}, {!fixpoint}, {!until_stable}) replace the
    hand-written driver loops that used to live in {!Pipeline}; drivers can
    assemble custom pipelines by name with {!parse}. *)

open Grover_ir
module Diag = Grover_support.Diag
module Loc = Grover_support.Loc

(* -- Instrumentation ------------------------------------------------------- *)

type stat = {
  st_pass : string;
  st_seconds : float;  (** wall-clock time of this run of the pass *)
  st_changed : bool;
  st_before : int;  (** instruction count before the pass *)
  st_after : int;  (** instruction count after the pass *)
}

type ctx = {
  mutable diags : Diag.t list;  (** newest first *)
  mutable stats : stat list;  (** newest first; one entry per pass run *)
  verify_each : bool;  (** run [Verify.run] after every pass *)
  print_changed : bool;  (** print the IR whenever a pass changes it *)
  print : string -> unit;  (** sink for [print_changed] output *)
}

let ctx ?(verify_each = false) ?(print_changed = false)
    ?(print = prerr_string) () =
  { diags = []; stats = []; verify_each; print_changed; print }

let diag (c : ctx) (d : Diag.t) : unit = c.diags <- d :: c.diags

let remarkf (c : ctx) ?loc ?code ~pass fmt =
  Format.kasprintf (fun m -> diag c (Diag.make ?loc ?code ~pass Diag.Remark m)) fmt

let warnf (c : ctx) ?loc ?code ~pass fmt =
  Format.kasprintf (fun m -> diag c (Diag.make ?loc ?code ~pass Diag.Warning m)) fmt

let errf (c : ctx) ?loc ?code ~pass fmt =
  Format.kasprintf (fun m -> diag c (Diag.make ?loc ?code ~pass Diag.Error m)) fmt

(** Diagnostics in emission order. *)
let diags (c : ctx) : Diag.t list = List.rev c.diags

let errors (c : ctx) : Diag.t list = List.filter Diag.is_error (diags c)

(** Pass runs in execution order. *)
let stats (c : ctx) : stat list = List.rev c.stats

(* -- The pass type and registry ------------------------------------------- *)

type t = {
  p_name : string;
  p_descr : string;
  p_spec : string;
      (** stable structural serialization: leaf passes are their name,
          combinators expose their members ("seq[a,fix[b,c]]"), so the spec
          changes exactly when the pipeline's behaviour could. Part of the
          compile-cache key. *)
  p_run : ctx -> Ssa.func -> bool;
}

let name (p : t) = p.p_name
let descr (p : t) = p.p_descr

(** The stable structural form of a pass (see {!t.p_spec}). *)
let spec (p : t) = p.p_spec

(** The stable structural form of a pipeline: member specs joined with ","
    — the canonical string hashed into compile-cache keys. *)
let pipeline_spec (ps : t list) : string =
  String.concat "," (List.map spec ps)

let make ?spec:sp p_name ~descr p_run =
  { p_name; p_descr = descr;
    p_spec = (match sp with Some s -> s | None -> p_name);
    p_run }

(** A pass that neither emits diagnostics nor needs the context. *)
let simple p_name ~descr run = make p_name ~descr (fun _ fn -> run fn)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registered_order : string list ref = ref []

let register (p : t) : t =
  if not (Hashtbl.mem registry p.p_name) then
    registered_order := p.p_name :: !registered_order;
  Hashtbl.replace registry p.p_name p;
  p

let find (name : string) : t option = Hashtbl.find_opt registry name

(** All registered passes, in registration order. *)
let all () : t list =
  List.rev_map (fun n -> Hashtbl.find registry n) !registered_order

let names () : string list = List.map (fun p -> p.p_name) (all ())

(* -- The instrumented runner ---------------------------------------------- *)

let instr_count (fn : Ssa.func) : int =
  Ssa.fold_instrs (fun n _ -> n + 1) 0 fn

let record (c : ctx) p ~seconds ~changed ~before ~after =
  c.stats <-
    { st_pass = p.p_name; st_seconds = seconds; st_changed = changed;
      st_before = before; st_after = after }
    :: c.stats

let verify_after (c : ctx) (p : t) (fn : Ssa.func) : unit =
  try Verify.run fn
  with Verify.Invalid_ir m ->
    let d =
      Diag.errorf ~pass:p.p_name "invalid IR after pass '%s': %s" p.p_name m
    in
    diag c d;
    raise (Diag.Fatal d)

(** Run one pass under the manager: time it, count instructions, record a
    {!stat}, optionally print the changed IR and re-verify. Exceptions from
    the pass body are converted to error diagnostics and re-raised as
    {!Diag.Fatal} so drivers print one located line instead of a trace. *)
let run_pass (c : ctx) (p : t) (fn : Ssa.func) : bool =
  let before = instr_count fn in
  let t0 = Unix.gettimeofday () in
  let changed =
    try p.p_run c fn with
    | Verify.Invalid_ir m ->
        let d = Diag.errorf ~pass:p.p_name "invalid IR in pass '%s': %s" p.p_name m in
        diag c d;
        record c p ~seconds:(Unix.gettimeofday () -. t0) ~changed:false
          ~before ~after:(instr_count fn);
        raise (Diag.Fatal d)
    | Diag.Fatal d ->
        diag c d;
        record c p ~seconds:(Unix.gettimeofday () -. t0) ~changed:false
          ~before ~after:(instr_count fn);
        raise (Diag.Fatal d)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let after = instr_count fn in
  record c p ~seconds ~changed ~before ~after;
  if c.print_changed && changed then
    c.print
      (Printf.sprintf "; IR after %s (%+d instrs)\n%s" p.p_name (after - before)
         (Printer.func_to_string fn));
  if c.verify_each then verify_after c p fn;
  changed

(** Run a pass list in order; true if any member changed the function. *)
let run_pipeline (c : ctx) (ps : t list) (fn : Ssa.func) : bool =
  List.fold_left
    (fun acc p ->
      let changed = run_pass c p fn in
      acc || changed)
    false ps

(* -- Combinators ----------------------------------------------------------- *)

(** Run the members once each, in order. *)
let seq name ?descr (ps : t list) : t =
  let descr =
    match descr with
    | Some d -> d
    | None ->
        Printf.sprintf "sequence: %s"
          (String.concat " -> " (List.map (fun p -> p.p_name) ps))
  in
  make name ~descr
    ~spec:(Printf.sprintf "seq[%s]" (pipeline_spec ps))
    (fun c fn -> run_pipeline c ps fn)

(* A runaway rewrite ping-pong would otherwise loop forever; no legitimate
   pipeline needs anywhere near this many rounds. *)
let fixpoint_fuel = 1000

(** Repeat the member list until a full round reports no change. *)
let fixpoint name ?descr (ps : t list) : t =
  let descr =
    match descr with
    | Some d -> d
    | None ->
        Printf.sprintf "fixpoint of: %s"
          (String.concat ", " (List.map (fun p -> p.p_name) ps))
  in
  make name ~descr
    ~spec:(Printf.sprintf "fix[%s]" (pipeline_spec ps))
    (fun c fn ->
      let changed = ref false in
      let continue_ = ref true in
      let rounds = ref 0 in
      while !continue_ do
        incr rounds;
        if !rounds > fixpoint_fuel then begin
          diag c
            (Diag.warningf ~pass:name
               "fixpoint '%s' did not stabilise after %d rounds; stopping"
               name fixpoint_fuel);
          continue_ := false
        end
        else begin
          let round = run_pipeline c ps fn in
          if round then changed := true else continue_ := false
        end
      done;
      !changed)

(** Repeat one pass until it reports no change. *)
let until_stable (p : t) : t = fixpoint (p.p_name ^ "*") [ p ]

(* -- Pipeline parsing ------------------------------------------------------ *)

(** Parse a comma-separated pipeline specification ("canon,mem2reg,dce")
    against the registry. *)
let parse (spec : string) : (t list, Diag.t) result =
  let requested =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if requested = [] then
    Result.Error (Diag.errorf "empty pass pipeline specification")
  else
    let rec go acc = function
      | [] -> Result.Ok (List.rev acc)
      | n :: rest -> (
          match find n with
          | Some p -> go (p :: acc) rest
          | None ->
              Result.Error
                (Diag.errorf "unknown pass '%s'; available: %s" n
                   (String.concat ", " (names ()))))
    in
    go [] requested

(* -- Timing report --------------------------------------------------------- *)

type summary = {
  sm_pass : string;
  sm_runs : int;
  sm_seconds : float;
  sm_changed : int;  (** number of runs that changed the function *)
  sm_delta : int;  (** net instruction-count delta over all runs *)
}

(** Aggregate the per-run stats by pass name, ordered by total time. *)
let summarize (c : ctx) : summary list =
  let tbl : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun st ->
      match Hashtbl.find_opt tbl st.st_pass with
      | None ->
          order := st.st_pass :: !order;
          Hashtbl.add tbl st.st_pass
            { sm_pass = st.st_pass; sm_runs = 1; sm_seconds = st.st_seconds;
              sm_changed = (if st.st_changed then 1 else 0);
              sm_delta = st.st_after - st.st_before }
      | Some s ->
          Hashtbl.replace tbl st.st_pass
            { s with
              sm_runs = s.sm_runs + 1;
              sm_seconds = s.sm_seconds +. st.st_seconds;
              sm_changed = (s.sm_changed + if st.st_changed then 1 else 0);
              sm_delta = s.sm_delta + (st.st_after - st.st_before) })
    (stats c);
  List.rev !order
  |> List.map (fun n -> Hashtbl.find tbl n)
  |> List.sort (fun a b -> compare b.sm_seconds a.sm_seconds)

(** Human-readable aggregated timing table (LLVM's -time-passes style). *)
let timing_table (c : ctx) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-14s %6s %12s %9s %8s\n" "pass" "runs" "time(ms)"
       "Δinstrs" "changed");
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %6d %12.3f %9d %8d\n" s.sm_pass s.sm_runs
           (s.sm_seconds *. 1e3) s.sm_delta s.sm_changed))
    (summarize c);
  Buffer.contents b

(** One JSON object per pass (aggregated), for machine consumers. *)
let stats_json (c : ctx) : string list =
  List.map
    (fun s ->
      Printf.sprintf
        "{\"type\": \"pass-stat\", \"pass\": %S, \"runs\": %d, \"seconds\": \
         %.6f, \"instr_delta\": %d, \"changed_runs\": %d}"
        s.sm_pass s.sm_runs s.sm_seconds s.sm_delta s.sm_changed)
    (summarize c)

(* -- The registered base passes -------------------------------------------- *)

let canon =
  register
    (simple "canon" ~descr:"canonicalise work-item builtin calls" Canon.run)

let expand_gids =
  register
    (simple "expand-gids"
       ~descr:"rewrite get_global_id(d) as group_id*local_size+local_id"
       Canon.expand_global_ids)

let mem2reg =
  register
    (simple "mem2reg" ~descr:"promote private alloca slots to SSA registers"
       Mem2reg.run)

let simplify =
  register
    (simple "simplify" ~descr:"constant folding and algebraic simplification"
       Simplify.run)

let cse =
  register
    (simple "cse" ~descr:"dominator-scoped common-subexpression elimination"
       Cse.run)

let dce =
  register (simple "dce" ~descr:"dead-code elimination" Dce.run)

let licm =
  register (simple "licm" ~descr:"loop-invariant code motion" Licm.run)

let verify =
  register
    (simple "verify" ~descr:"IR well-formedness check (never changes the IR)"
       (fun fn ->
         Verify.run fn;
         false))
