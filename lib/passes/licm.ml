(** Loop-invariant code motion.

    Natural loops are found via back edges (a successor that dominates its
    predecessor); pure instructions whose operands are defined outside the
    loop hoist to the block entering the header. This is the concern behind
    the paper's Fig. 7(b): loop-independent index terms should be computed
    once outside the loop — after Grover duplicates a global-load index
    chain before a local load inside a loop, LICM hoists the re-created
    invariant subterms back out. *)

open Grover_ir
open Ssa

type loop = {
  header : block;
  blocks : (int, unit) Hashtbl.t;  (** block ids in the loop *)
  preheader : block option;  (** unique out-of-loop predecessor of header *)
}

let find_loops (_fn : func) (dom : Dom.t) : loop list =
  let cfg = dom.Dom.cfg in
  let loops = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          if Cfg.is_reachable cfg s && Dom.dominates dom s b then begin
            (* Back edge b -> s: body = s plus everything reaching b
               without passing through s. *)
            let body = Hashtbl.create 8 in
            Hashtbl.replace body s.bid ();
            let rec pull (x : block) =
              if not (Hashtbl.mem body x.bid) then begin
                Hashtbl.replace body x.bid ();
                List.iter pull (Cfg.preds cfg x)
              end
            in
            pull b;
            let outside_preds =
              List.filter
                (fun p -> not (Hashtbl.mem body p.bid))
                (Cfg.preds cfg s)
            in
            let preheader =
              match outside_preds with [ p ] -> Some p | _ -> None
            in
            loops := { header = s; blocks = body; preheader } :: !loops
          end)
        (successors b))
    cfg.Cfg.order;
  !loops

let run (fn : func) : bool =
  let dom = Dom.compute fn in
  let changed = ref false in
  let loops = find_loops fn dom in
  List.iter
    (fun loop ->
      match loop.preheader with
      | None -> ()
      | Some pre ->
          let in_loop (v : value) : bool =
            match v with
            | Vinstr i -> (
                match i.parent with
                | Some b -> Hashtbl.mem loop.blocks b.bid
                | None -> true (* detached: be conservative *))
            | _ -> false
          in
          (* A division can trap; hoisting one out of a guarded body could
             introduce a trap the original program never executed. *)
          let safe_to_speculate (op : opcode) : bool =
            match op with
            | Binop ((Sdiv | Udiv | Srem | Urem), _, d) -> (
                match d with Cint (_, n) -> n <> 0 | _ -> false)
            | _ -> true
          in
          let continue_ = ref true in
          while !continue_ do
            continue_ := false;
            List.iter
              (fun bid ->
                match
                  List.find_opt (fun b -> b.bid = bid) fn.blocks
                with
                | None -> ()
                | Some blk ->
                    let hoistable, rest =
                      List.partition
                        (fun i ->
                          Cse.is_pure i.op
                          && safe_to_speculate i.op
                          && not (List.exists in_loop (operands i.op)))
                        blk.instrs
                    in
                    if hoistable <> [] then begin
                      blk.instrs <- rest;
                      List.iter
                        (fun i ->
                          i.parent <- Some pre;
                          pre.instrs <- pre.instrs @ [ i ])
                        hoistable;
                      changed := true;
                      continue_ := true
                    end)
              (* Sorted so hoisting order follows block creation order:
                 hashtable order depends on absolute bid values and would
                 make two compiles of the same source diverge. *)
              (List.sort compare
                 (Hashtbl.fold (fun k () acc -> k :: acc) loop.blocks []))
          done)
    loops;
  !changed
