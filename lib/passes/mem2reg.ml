(** Promotion of private alloca slots to SSA registers.

    Standard SSA construction: phi placement on the iterated dominance
    frontier, then a renaming walk over the dominator tree. After promotion
    the index chains that Grover analyses bottom out at calls, constants,
    arguments and phis — the four leaf kinds of paper §IV-B.

    Trivial phis (all incoming values identical, possibly via self-reference)
    are removed afterwards, so loop-invariant variables do not masquerade as
    loop-carried values. *)

open Grover_ir
open Ssa

(* A private, single-element alloca is promotable when it is only ever used
   as the direct pointer of an index-0 load or store (never escaping). *)
let promotable (fn : func) (a : instr) : bool =
  match a.op with
  | Alloca { aspace = Private; count = 1; _ } ->
      let ok = ref true in
      iter_instrs
        (fun i ->
          match i.op with
          | Load { ptr = Vinstr p; index = Cint (_, 0) } when p.iid = a.iid -> ()
          | Store { ptr = Vinstr p; index = Cint (_, 0); v } when p.iid = a.iid ->
              (match v with
              | Vinstr sv when sv.iid = a.iid -> ok := false
              | _ -> ())
          | _ ->
              if List.exists (fun o -> value_equal o (Vinstr a)) (operands i.op)
              then ok := false)
        fn;
      !ok
  | _ -> false

let elem_ty (a : instr) =
  match a.op with
  | Alloca { elem; _ } -> elem
  | _ -> invalid_arg "elem_ty: not an alloca"

let zero_value (t : ty) : value =
  match t with
  | F32 -> Cfloat 0.0
  | Vec (F32, n) ->
      Vinstr (fresh_instr (Vecbuild (t, List.init n (fun _ -> Cfloat 0.0))))
  | Vec (e, n) ->
      Vinstr (fresh_instr (Vecbuild (t, List.init n (fun _ -> Cint (e, 0)))))
  | _ -> Cint (t, 0)

let rec run (fn : func) : bool =
  let allocas =
    fold_instrs (fun acc i -> if promotable fn i then i :: acc else acc) [] fn
  in
  if allocas <> [] then begin
    let dom = Dom.compute fn in
    let cfg = dom.Dom.cfg in
    let nb = Cfg.n_blocks cfg in
    let block_of i = cfg.Cfg.order.(i) in
    (* For the zero_value vector case we may create detached vecbuilds; they
       must live in the entry block. *)
    let materialise_zero t =
      let v = zero_value t in
      (match v with
      | Vinstr i ->
          let e = entry fn in
          i.parent <- Some e;
          e.instrs <- i :: e.instrs
      | _ -> ());
      v
    in
    (* 1. Phi placement on the iterated dominance frontier of the stores. *)
    let phi_for : (int * int, instr) Hashtbl.t = Hashtbl.create 16 in
    (* (block rpo index, alloca iid) -> phi *)
    List.iter
      (fun a ->
        let defs = Array.make nb false in
        iter_instrs
          (fun i ->
            match i.op with
            | Store { ptr = Vinstr p; _ } when p.iid = a.iid -> (
                match i.parent with
                | Some b when Cfg.is_reachable cfg b ->
                    defs.(Cfg.rpo_index cfg b) <- true
                | _ -> ())
            | _ -> ())
          fn;
        let work = ref [] in
        Array.iteri (fun i d -> if d then work := i :: !work) defs;
        let placed = Array.make nb false in
        let rec go () =
          match !work with
          | [] -> ()
          | b :: rest ->
              work := rest;
              List.iter
                (fun f ->
                  if not placed.(f) then begin
                    placed.(f) <- true;
                    let blk = block_of f in
                    let phi =
                      fresh_instr (Phi { incoming = []; p_ty = elem_ty a })
                    in
                    phi.parent <- Some blk;
                    blk.instrs <- phi :: blk.instrs;
                    Hashtbl.add phi_for (f, a.iid) phi;
                    if not defs.(f) then work := f :: !work
                  end)
                dom.Dom.frontier.(b);
              go ()
        in
        go ())
      allocas;
    (* 2. Renaming walk over the dominator tree. *)
    let is_target iid = List.exists (fun a -> a.iid = iid) allocas in
    let replacement : (int, value) Hashtbl.t = Hashtbl.create 64 in
    (* load iid -> replacing value (may chain through other loads) *)
    let rec resolve (v : value) : value =
      match v with
      | Vinstr i -> (
          match Hashtbl.find_opt replacement i.iid with
          | Some v' -> resolve v'
          | None -> v)
      | _ -> v
    in
    let rec walk (bi : int) (incoming : (int * value) list) : unit =
      let blk = block_of bi in
      let cur = ref incoming in
      let get a =
        match List.assoc_opt a.iid !cur with
        | Some v -> v
        | None -> materialise_zero (elem_ty a)
      in
      let set a v = cur := (a.iid, v) :: List.remove_assoc a.iid !cur in
      (* Phis placed for an alloca define its current value on entry. *)
      List.iter
        (fun a ->
          match Hashtbl.find_opt phi_for (bi, a.iid) with
          | Some phi -> set a (Vinstr phi)
          | None -> ())
        allocas;
      List.iter
        (fun i ->
          match i.op with
          | Load { ptr = Vinstr p; index = Cint (_, 0) } when is_target p.iid ->
              let a = List.find (fun a -> a.iid = p.iid) allocas in
              Hashtbl.replace replacement i.iid (get a)
          | Store { ptr = Vinstr p; index = Cint (_, 0); v } when is_target p.iid ->
              let a = List.find (fun a -> a.iid = p.iid) allocas in
              set a v
          | _ -> ())
        blk.instrs;
      (* Fill successor phi entries with the value at the end of this block. *)
      List.iter
        (fun s ->
          if Cfg.is_reachable cfg s then
            let si = Cfg.rpo_index cfg s in
            List.iter
              (fun a ->
                match Hashtbl.find_opt phi_for (si, a.iid) with
                | Some phi -> (
                    match phi.op with
                    | Phi p -> p.incoming <- p.incoming @ [ (blk, get a) ]
                    | _ -> assert false)
                | None -> ())
              allocas)
        (successors blk);
      List.iter (fun child -> walk child !cur) dom.Dom.children.(bi)
    in
    walk 0 [];
    (* 3. Rewrite all operands through the replacement map (resolving
       chains), then delete the dead loads, stores and allocas. *)
    iter_instrs (fun i -> i.op <- map_operands ~f:resolve i.op) fn;
    List.iter
      (fun blk ->
        blk.instrs <-
          List.filter
            (fun i ->
              match i.op with
              | Load { ptr = Vinstr p; _ } when is_target p.iid -> false
              | Store { ptr = Vinstr p; _ } when is_target p.iid -> false
              | Alloca _ when is_target i.iid -> false
              | _ -> true)
            blk.instrs)
      fn.blocks
  end;
  remove_trivial_phis fn;
  allocas <> []

(* A phi is trivial if every incoming value is either the phi itself or one
   common value v; the phi then just names v. *)
and remove_trivial_phis (fn : func) : unit =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun blk ->
        List.iter
          (fun i ->
            match i.op with
            | Phi { incoming; _ } -> (
                let foreign =
                  List.filter_map
                    (fun (_, v) ->
                      match v with
                      | Vinstr j when j.iid = i.iid -> None
                      | v -> Some v)
                    incoming
                in
                match foreign with
                | v :: rest when List.for_all (value_equal v) rest ->
                    replace_uses fn ~target:(Vinstr i) ~by:v;
                    remove_instr blk i;
                    changed := true
                | _ -> ())
            | _ -> ())
          blk.instrs)
      fn.blocks
  done
