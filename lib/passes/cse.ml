(** Common-subexpression elimination (dominator-scoped value numbering).

    Pure instructions with identical opcodes and operands are merged when
    one dominates the other. Run before Grover so that equivalent index
    subexpressions share one SSA value, and after it so that the duplicated
    nGL index chain re-uses what the kernel already computes. *)

open Grover_ir
open Ssa

(* All supported builtins are pure functions of their arguments (barrier is
   an opcode, not a call). *)
let is_pure (op : opcode) : bool =
  match op with
  | Binop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Extract _ | Insert _
  | Vecbuild _ | Call _ ->
      true
  | Alloca _ | Load _ | Store _ | Phi _ | Br _ | Cond_br _ | Ret | Barrier _ ->
      false

(* A structural key for an opcode: constructor tag + operand identities. *)
let value_key (v : value) : string =
  match v with
  | Cint (t, n) ->
      Printf.sprintf "i%d:%d"
        (match t with I1 -> 1 | I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64 | _ -> 0)
        n
  | Cfloat f -> Printf.sprintf "f:%h" f
  | Arg a -> Printf.sprintf "a:%d" a.a_index
  | Vinstr i ->
      (* Fixed width so string order equals numeric id order: the relative
         order of ids is reproducible across processes (same construction
         sequence), the decimal-string order of raw ids is not ("v:99" >
         "v:100"), and [canonical_op] must make the same choice every time
         for compiled artifacts to be content-addressable. *)
      Printf.sprintf "v:%010d" i.iid

let opcode_key (op : opcode) : string option =
  if not (is_pure op) then None
  else
    let operands_part = String.concat "," (List.map value_key (operands op)) in
    let tag =
      match op with
      | Binop (b, _, _) -> "bin:" ^ Printer.binop_name b
      | Icmp (c, _, _) -> "icmp:" ^ Printer.icmp_name c
      | Fcmp (c, _, _) -> "fcmp:" ^ Printer.fcmp_name c
      | Select _ -> "select"
      | Cast (k, _, t) ->
          Printf.sprintf "cast:%s:%s" (Printer.cast_name k)
            (Format.asprintf "%a" Printer.pp_ty t)
      | Extract _ -> "extract"
      | Insert _ -> "insert"
      | Vecbuild (t, _) -> "vecbuild:" ^ Format.asprintf "%a" Printer.pp_ty t
      | Call { callee; ret; _ } ->
          Printf.sprintf "call:%s:%s" callee (Format.asprintf "%a" Printer.pp_ty ret)
      | _ -> assert false
    in
    Some (tag ^ "(" ^ operands_part ^ ")")

(* Commutative operations get a canonical operand order in the key. *)
let canonical_op (op : opcode) : opcode =
  match op with
  | Binop (((Add | Mul | And | Or | Xor | Fadd | Fmul) as b), x, y) ->
      let kx = value_key x and ky = value_key y in
      if String.compare kx ky <= 0 then op else Binop (b, y, x)
  | Icmp (Ieq, x, y) | Icmp (Ine, x, y) ->
      let kx = value_key x and ky = value_key y in
      if String.compare kx ky <= 0 then op
      else (match op with Icmp (c, _, _) -> Icmp (c, y, x) | _ -> op)
  | _ -> op

let run (fn : func) : bool =
  let dom = Dom.compute fn in
  let cfg = dom.Dom.cfg in
  let changed = ref false in
  (* Scoped value table over the dominator tree: entries added in a block
     are removed when its subtree is done. *)
  let table : (string, instr) Hashtbl.t = Hashtbl.create 64 in
  let rec walk (bi : int) : unit =
    let blk = cfg.Cfg.order.(bi) in
    let added = ref [] in
    let kills = ref [] in
    List.iter
      (fun i ->
        i.op <- canonical_op i.op;
        match opcode_key i.op with
        | None -> ()
        | Some key -> (
            match Hashtbl.find_opt table key with
            | Some earlier ->
                replace_uses fn ~target:(Vinstr i) ~by:(Vinstr earlier);
                kills := (blk, i) :: !kills;
                changed := true
            | None ->
                Hashtbl.add table key i;
                added := key :: !added))
      blk.instrs;
    List.iter (fun (b, i) -> remove_instr b i) !kills;
    List.iter walk dom.Dom.children.(bi);
    List.iter (fun key -> Hashtbl.remove table key) !added
  in
  walk 0;
  !changed
