(** Pass orchestration. [normalize] is the pipeline every kernel goes
    through before Grover's analysis; [cleanup] runs after its rewriting.

    Both are expressed with the {!Pass} combinators — the simplify/CSE/DCE
    fixpoint that used to be copy-pasted here is now one registered
    [fixpoint] pass, and drivers can run either pipeline (or any custom
    [-passes=...] list) under an instrumented {!Pass.ctx}. *)

open Grover_ir

(** simplify/cse/dce to a fixpoint — the classic cleanup loop. *)
let simplify_fix =
  Pass.register
    (Pass.fixpoint "simplify-fix" [ Pass.simplify; Pass.cse; Pass.dce ])

(** The post-transformation cleanup: the fixpoint, then LICM (which may
    re-expose work, e.g. hoisted subterms becoming CSE-able), then the
    fixpoint again. DCE here removes the dead local stores/allocas the
    Grover rewrite leaves behind. *)
let cleanup_pass =
  Pass.register
    (Pass.seq "cleanup"
       ~descr:"simplify/cse/dce fixpoint, LICM, fixpoint again"
       [ simplify_fix; Pass.licm; simplify_fix ])

(** Work-item-call canonicalisation + mem2reg + the cleanup loop. *)
let normalize_pass =
  Pass.register
    (Pass.seq "normalize"
       ~descr:"canonicalise, promote to SSA and clean up to a fixpoint"
       [ Pass.canon; Pass.expand_gids; Pass.canon; Pass.mem2reg;
         simplify_fix; Pass.licm; simplify_fix ])

(** Work-item-call canonicalisation + mem2reg + simplify/DCE to fixpoint;
    verified on exit. Pass [?ctx] to collect per-pass statistics and
    diagnostics; without one, behaviour is exactly the historical
    hard-wired sequence. *)
let normalize ?ctx (fn : Ssa.func) : unit =
  let c = match ctx with Some c -> c | None -> Pass.ctx () in
  ignore (Pass.run_pass c normalize_pass fn);
  Verify.run fn

(** Post-transformation cleanup; verified on exit. *)
let cleanup ?ctx (fn : Ssa.func) : unit =
  let c = match ctx with Some c -> c | None -> Pass.ctx () in
  ignore (Pass.run_pass c cleanup_pass fn);
  Verify.run fn
