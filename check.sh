#!/bin/sh
# CI entry point: build everything, run the full test suite under both
# interpreter engines, smoke-test groverc (--verify-each over the example
# kernels; any error-severity diagnostic makes groverc exit non-zero and
# fails the run), then the interpreter throughput bench at a small size so
# the perf target cannot bit-rot.
set -eu

cd "$(dirname "$0")"

echo "== dune build @all =="
dune build @all

echo "== dune runtest (closure engine) =="
GROVER_ENGINE=closure dune runtest --force

echo "== dune runtest (tree engine) =="
GROVER_ENGINE=tree dune runtest --force

echo "== groverc --verify-each smoke (examples/kernels) =="
for f in examples/kernels/*.cl; do
  echo "-- $f"
  dune exec bin/groverc.exe -- transform "$f" --verify-each > /dev/null
done

echo "== groverc custom pipeline smoke (suite, all kernels) =="
dune exec bin/groverc.exe -- pipeline all \
  -passes=canon,mem2reg,simplify,cse,dce --time-passes --verify-each \
  > /dev/null

echo "== autotune with auto domains, both engines (validated wallclock) =="
# The host-throughput phase verifies kernel output per measured run, so a
# chunked-parallel miscompute fails this step (not just slows it down).
GROVER_ENGINE=closure dune exec bin/groverc.exe -- autotune NVD-MT --domains 0 \
  > /dev/null
GROVER_ENGINE=tree dune exec bin/groverc.exe -- autotune NVD-MT --domains 0 \
  > /dev/null

echo "== bench perf --quick --check-scaling =="
# --check-scaling fails the run if the auto-domain row is >10% slower
# than domains=1 on any measured path.
dune exec bench/main.exe -- perf --quick --check-scaling
