#!/bin/sh
# CI entry point: build everything, run the full test suite under both
# interpreter engines, smoke-test groverc (--verify-each over the example
# kernels; any error-severity diagnostic makes groverc exit non-zero and
# fails the run), then the interpreter throughput bench at a small size so
# the perf target cannot bit-rot.
set -eu

cd "$(dirname "$0")"

echo "== dune build @all =="
dune build @all

echo "== dune build @fmt =="
# Formatting gate, skipped when the container lacks ocamlformat.
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "(ocamlformat not installed; skipped)"
fi

echo "== dune runtest (closure engine) =="
GROVER_ENGINE=closure dune runtest --force

echo "== dune runtest (tree engine) =="
GROVER_ENGINE=tree dune runtest --force

echo "== suite under every forced execution path =="
# GROVER_FORCE_PATH pins the group scheduler; kernels that cannot take the
# requested path degrade to the strongest one they can. Executing the whole
# suite (both kernel versions, outputs validated, sanitizer on) under each
# mode gates all four schedulers — wg-vec, wg-loop, fiberless, fiber — on
# every kernel shape we have.
for mode in wg-vec wg-loop fiberless fiber; do
  echo "-- GROVER_FORCE_PATH=$mode"
  GROVER_FORCE_PATH=$mode dune exec bin/groverc.exe -- sanitize all --scale 8 \
    > /dev/null
done

echo "== uniform-branch barrier qualifies for lane-batched execution =="
# A barrier under *group-uniform* control flow must still take a region
# path — and this one is lane-capable, so the planner must pick wg-vec
# (guards against over-conservative region formation AND lane
# classification). It must also execute cleanly under the sanitizer.
out=$(dune exec bin/groverc.exe -- report examples/kernels/uniform_branch_barrier.cl)
case "$out" in
  *"execution path (with local memory): wg-vec"*) ;;
  *) echo "FAIL: uniform_branch_barrier.cl did not plan as wg-vec"
     echo "$out"; exit 1 ;;
esac
dune exec bin/groverc.exe -- sanitize examples/kernels/uniform_branch_barrier.cl \
  --local 16 > /dev/null

echo "== wg-vec planned for the flagship barrier kernels =="
# Non-vacuousness: the lane-batched path must actually be selected for
# the transpose and GEMM kernels, or every wg-vec differential and bench
# row silently degrades to wg-loop.
for f in examples/kernels/transpose_tile.cl examples/kernels/gemm_float4.cl; do
  out=$(dune exec bin/groverc.exe -- report "$f")
  case "$out" in
    *"execution path (with local memory): wg-vec"*) echo "-- $f plans wg-vec" ;;
    *) echo "FAIL: $f did not plan as wg-vec"; echo "$out"; exit 1 ;;
  esac
done

echo "== masked lane execution: guard diamonds upgrade, divergent stores bail =="
# The guarded matmul carries the SDK boundary-clamp idiom: a pure
# divergent diamond that must be if-converted and run as a masked lane
# batch (not dropped to the scalar sweep), keeping the kernel on wg-vec.
out=$(dune exec bin/groverc.exe -- report examples/kernels/guarded_matmul.cl)
case "$out" in
  *"execution path (with local memory): wg-vec"*) ;;
  *) echo "FAIL: guarded_matmul.cl did not plan as wg-vec"
     echo "$out"; exit 1 ;;
esac
case "$out" in
  *"lane batch (masked"*) echo "-- guarded_matmul.cl runs masked lane batches" ;;
  *) echo "FAIL: guarded_matmul.cl reported no masked region"
     echo "$out"; exit 1 ;;
esac
# Side effects are never masked: a store under divergent control must
# keep its scalar-sweep verdict, and the bail reason must carry the
# offending store's source location.
out=$(dune exec bin/groverc.exe -- report examples/kernels/divergent_store.cl)
case "$out" in
  *"scalar sweep: divergent store at"*)
     echo "-- divergent_store.cl bails with a located reason" ;;
  *) echo "FAIL: divergent_store.cl lost its divergent-store bail reason"
     echo "$out"; exit 1 ;;
esac
# The masked verdicts must be scriptable: the same region verdicts are
# emitted as GRV-LANE remark diagnostics in JSON mode.
if ! dune exec bin/groverc.exe -- report examples/kernels/guarded_matmul.cl \
    --diag-format=json | grep -q '"code": "GRV-LANE"'; then
  echo "FAIL: report --diag-format=json emitted no GRV-LANE region verdicts"
  exit 1
fi

echo "== groverc --verify-each smoke (examples/kernels) =="
for f in examples/kernels/*.cl; do
  echo "-- $f"
  dune exec bin/groverc.exe -- transform "$f" --verify-each > /dev/null
done

echo "== groverc custom pipeline smoke (suite, all kernels) =="
dune exec bin/groverc.exe -- pipeline all \
  -passes=canon,mem2reg,simplify,cse,dce --time-passes --verify-each \
  > /dev/null

echo "== sanitizer smoke: good corpus and suite must be clean =="
# Static legality passes + shadow-memory sanitizer; any finding exits 1.
dune exec bin/groverc.exe -- sanitize examples/kernels/saxpy.cl > /dev/null
dune exec bin/groverc.exe -- sanitize examples/kernels/transpose_tile.cl \
  --local 16,16 > /dev/null
dune exec bin/groverc.exe -- sanitize examples/kernels/tiled_matmul.cl \
  --global 16,16 --local 8,8 > /dev/null
dune exec bin/groverc.exe -- sanitize all --scale 8 > /dev/null

echo "== sanitizer smoke: bad corpus must be rejected with the right codes =="
expect_bad() {
  f="examples/kernels/$1"; shift
  if out=$(dune exec bin/groverc.exe -- sanitize "$f" --local 16 2>&1); then
    echo "FAIL: $f exited 0 but must be rejected"; exit 1
  fi
  for code in "$@"; do
    case "$out" in
      *"$code"*) ;;
      *) echo "FAIL: $f diagnostics lack $code"; echo "$out"; exit 1 ;;
    esac
  done
  echo "-- $f rejected ($*)"
}
expect_bad bad_racy_store.cl GRV-RACE-MUST GRV-SAN-WW
expect_bad bad_divergent_barrier.cl GRV-BARRIER-DIV GRV-SAN-DIV
expect_bad bad_oob_index.cl GRV-OOB-STATIC GRV-SAN-OOB

echo "== autotune with auto domains, both engines (validated wallclock) =="
# The host-throughput phase verifies kernel output per measured run, so a
# chunked-parallel miscompute fails this step (not just slows it down).
# The winner is persisted to a throwaway DB, which must gain an entry.
tunedir=$(mktemp -d)
GROVER_ENGINE=closure dune exec bin/groverc.exe -- autotune NVD-MT --domains 0 \
  --cache-dir "$tunedir" > /dev/null
GROVER_ENGINE=tree dune exec bin/groverc.exe -- autotune NVD-MT --domains 0 \
  --cache-dir "$tunedir" > /dev/null
if ! grep -q "transpose" "$tunedir/autotune.db"; then
  echo "FAIL: autotune did not persist a transpose entry to $tunedir/autotune.db"
  exit 1
fi
echo "-- autotune.db holds $(wc -l < "$tunedir/autotune.db") entry(ies)"
rm -rf "$tunedir"

echo "== promote: bidirectional optimizer over the whole suite (--predict) =="
# The insertion direction: every suite kernel must get a verdict (promoted
# or a stated refusal), every promoted kernel must pass race certification,
# the sanitizer and output validation (groverc promote exits non-zero
# otherwise), and the predictor-ranked winner is recorded to a throwaway
# autotune DB with predictor provenance.
promodir=$(mktemp -d)
dune exec bin/groverc.exe -- promote all --predict --cache-dir "$promodir" \
  > /tmp/grover_promote_out
verdicts=$(grep -c -E "(promoted [0-9]+ load|no promotion)" /tmp/grover_promote_out || true)
ncases=$(dune exec bin/groverc.exe -- list | wc -l)
if [ "$verdicts" -ne "$ncases" ]; then
  echo "FAIL: promote all gave $verdicts verdicts for $ncases suite kernels"
  cat /tmp/grover_promote_out
  exit 1
fi
if ! grep -q "promoted [0-9]* load" /tmp/grover_promote_out; then
  echo "FAIL: promote all promoted nothing (the insertion direction is vacuous)"
  cat /tmp/grover_promote_out
  exit 1
fi
if ! grep -q "tuned-by: predictor" /tmp/grover_promote_out; then
  echo "FAIL: promote --predict recorded no predictor-provenance entries"
  exit 1
fi
if ! grep -q "predictor" "$promodir/autotune.db"; then
  echo "FAIL: $promodir/autotune.db holds no predictor-tagged entries"
  exit 1
fi
dune exec bin/groverc.exe -- cache stats --cache-dir "$promodir" \
  | grep "autotune entries:"
echo "-- promote all: $verdicts verdicts, promoted kernels validated"
rm -rf "$promodir" /tmp/grover_promote_out

echo "== compile cache: warm run hits the disk tier and replays identically =="
# The whole suite is compiled twice through a fresh cache directory in two
# separate processes. The second run must (a) print byte-identical stdout
# (the staged artifact replays reports and counts exactly) and (b) report
# only cache hits on stderr — zero rebuilds.
cachedir=$(mktemp -d)
dune exec bin/groverc.exe -- pipeline all --cache-dir "$cachedir" \
  > /tmp/grover_cache_out1 2> /tmp/grover_cache_err1
dune exec bin/groverc.exe -- pipeline all --cache-dir "$cachedir" \
  > /tmp/grover_cache_out2 2> /tmp/grover_cache_err2
if ! cmp -s /tmp/grover_cache_out1 /tmp/grover_cache_out2; then
  echo "FAIL: cached pipeline runs differ on stdout"
  diff /tmp/grover_cache_out1 /tmp/grover_cache_out2 || true
  exit 1
fi
warmline=$(grep '^cache:' /tmp/grover_cache_err2 || true)
case "$warmline" in
  *" 0 disk hits"*|"")
    echo "FAIL: warm run reported no disk hits: $warmline"
    exit 1 ;;
esac
case "$warmline" in
  *" 0 misses"*) echo "-- warm run: $warmline" ;;
  *) echo "FAIL: warm run still rebuilt something: $warmline"; exit 1 ;;
esac
rm -rf "$cachedir" /tmp/grover_cache_out1 /tmp/grover_cache_out2 \
  /tmp/grover_cache_err1 /tmp/grover_cache_err2

echo "== groverc run: out-of-order queue over the whole suite =="
# Every (case, version) pair twice through one command queue; outputs are
# validated against the host references, so a scheduling bug that leaks
# across launches fails the step, not just slows it.
dune exec bin/groverc.exe -- run all --jobs 2 --scale 8

echo "== bench perf --quick --check-scaling --multi-launch =="
# --check-scaling fails the run if the auto-domain row is >10% slower
# than domains=1 on any measured path, and its multi-launch row fails if
# queued submission of the suite is >10% below sequential (queue
# bookkeeping must be free even on one domain). --multi-launch adds the
# differential (queued buffers and totals bit-identical to sequential)
# and, on hosts with >= 2 effective domains, a >= 1.3x pipelining gate.
# Quick mode must never rewrite the checked-in full-size measurement
# (BENCH_interp.json).
if [ -f BENCH_interp.json ]; then
  bench_sum=$(cksum BENCH_interp.json)
else
  bench_sum=absent
fi
dune exec bench/main.exe -- perf --quick --check-scaling --multi-launch
if [ -f BENCH_interp.json ]; then
  bench_sum_after=$(cksum BENCH_interp.json)
else
  bench_sum_after=absent
fi
if [ "$bench_sum" != "$bench_sum_after" ]; then
  echo "FAIL: bench perf --quick rewrote BENCH_interp.json"
  exit 1
fi
