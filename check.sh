#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# interpreter throughput bench (writes BENCH_interp.json at a small size,
# so the perf target cannot bit-rot).
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench perf --quick =="
dune exec bench/main.exe -- perf --quick
