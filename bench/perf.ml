(* Interpreter throughput benchmark: the closure-compiled engine vs the
   legacy tree-walking engine on NVD-MT (matrix transpose), measured in
   work-items/sec over a full launch (trace recording included, no
   platform simulation). Results go to stdout and BENCH_interp.json. *)

open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module Nvd_mt = Grover_suite.Nvd_mt

(* The suite workload builder treats [scale] as a divisor of the 256^2
   base problem, so the 512^2 benchmark size is built directly here. *)
let mk_transpose ~n : Kit.workload =
  let mem = Memory.create () in
  let out = Memory.alloc mem Grover_ir.Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Grover_ir.Ssa.F32 (n * n) in
  let gen = Kit.float_gen 42 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    let expected = Array.init (n * n) (fun k -> i.((k mod n * n) + (k / n))) in
    Kit.check_floats ~label:"NVD-MT" ~expected ~actual:o ~eps:0.0
  in
  {
    Kit.mem;
    args = [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ];
    global = (n, n, 1);
    local = (16, 16, 1);
    check;
  }

type row = {
  version : H.version;
  engine : Interp.engine;
  domains : int;
  seconds : float;
  wi_per_sec : float;
}

let version_name = function H.With_lm -> "with_lm" | H.Without_lm -> "without_lm"
let engine_name = function Interp.Compiled -> "compiled" | Interp.Tree -> "tree"

let measure ~(version : H.version) ~(engine : Interp.engine) ~(domains : int)
    ~(n : int) ~(reps : int) : row =
  let fn, _ = H.compile_version Nvd_mt.case version in
  let compiled = Interp.prepare ~engine fn in
  let w = mk_transpose ~n in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let (_ : Trace.totals) =
      Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ~domains ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (match w.Kit.check () with
  | Ok () -> ()
  | Error m -> failwith ("perf bench produced wrong output: " ^ m));
  let n_items = n * n in
  { version; engine; domains; seconds = !best; wi_per_sec = float_of_int n_items /. !best }

let run ?(quick = false) () : unit =
  let n = if quick then 128 else 512 in
  let reps = if quick then 1 else 3 in
  Exp.header
    (Printf.sprintf
       "Interpreter throughput: NVD-MT %dx%d, %d rep%s (work-items/sec; \
        compiled closures vs tree walk)"
       n n reps (if reps = 1 then "" else "s"));
  let rows =
    [ measure ~version:H.With_lm ~engine:Interp.Tree ~domains:1 ~n ~reps;
      measure ~version:H.With_lm ~engine:Interp.Compiled ~domains:1 ~n ~reps;
      measure ~version:H.Without_lm ~engine:Interp.Tree ~domains:1 ~n ~reps;
      measure ~version:H.Without_lm ~engine:Interp.Compiled ~domains:1 ~n ~reps;
      (* domains = 0 asks the runtime for the recommended domain count. *)
      measure ~version:H.With_lm ~engine:Interp.Compiled ~domains:0 ~n ~reps ]
  in
  Printf.printf "%-12s %-10s %-8s %12s %14s\n" "version" "engine" "domains"
    "seconds" "wi/sec";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-10s %-8s %12.4f %14.0f\n" (version_name r.version)
        (engine_name r.engine)
        (if r.domains = 0 then "auto" else string_of_int r.domains)
        r.seconds r.wi_per_sec)
    rows;
  let find v e =
    List.find (fun r -> r.version = v && r.engine = e && r.domains = 1) rows
  in
  let speedup v =
    (find v Interp.Compiled).wi_per_sec /. (find v Interp.Tree).wi_per_sec
  in
  let sp_with = speedup H.With_lm and sp_without = speedup H.Without_lm in
  Printf.printf "\nspeedup compiled/tree: with_lm %.2fx, without_lm %.2fx\n"
    sp_with sp_without;
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"interp-throughput\",\n  \"case\": \"NVD-MT\",\n\
    \  \"n\": %d,\n  \"reps\": %d,\n  \"rows\": [\n" n reps;
  List.iteri
    (fun k r ->
      Printf.fprintf oc
        "    {\"version\": \"%s\", \"engine\": \"%s\", \"domains\": %d, \
         \"seconds\": %.6f, \"wi_per_sec\": %.0f}%s\n"
        (version_name r.version) (engine_name r.engine) r.domains r.seconds
        r.wi_per_sec
        (if k = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"speedup_with_lm\": %.2f,\n  \"speedup_without_lm\": %.2f\n}\n"
    sp_with sp_without;
  close_out oc;
  Printf.printf "wrote BENCH_interp.json\n%!"
