(* Interpreter throughput benchmark on NVD-MT (matrix transpose), measured
   in work-items/sec over a full launch (trace recording included, no
   platform simulation):

   - the closure-compiled engine vs the legacy tree-walking engine,
   - lane-batched execution (wg-vec, the default for this kernel) vs the
     forced one-work-item region sweep (wg-loop) vs the forced fiber
     scheduler on the barrier-carrying with_lm version, and
   - a domain-scaling sweep — (1, 2, 4, 0=auto) requested domains x
     (wg-vec on with_lm; fiberless and forced fibers on the barrier-free
     Grover-transformed version) — exercising the persistent domain pool
     and the chunked group scheduler.

   Every row records which execution path ran (wg-vec / wg-loop /
   fiberless / fiber), the lane width (1 for every non-batched path) and
   how many pool domains were actually used, so the numbers feeding
   tuning decisions are auditable. The run *fails* if no with_lm row
   actually took the wg-vec path, or none the wg-loop path — the bench
   doubles as the gate that lane compilation and region formation keep
   succeeding on the flagship barrier kernel. Results go to stdout and
   BENCH_interp.json; with [check_scaling] the run fails if the
   auto-domain row is >10% slower than the single-domain row (the
   regression the persistent pool exists to prevent). *)

open Grover_ocl
module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module Nvd_mt = Grover_suite.Nvd_mt
module Nvd_mm = Grover_suite.Nvd_mm

(* The suite workload builder treats [scale] as a divisor of the 256^2
   base problem, so the 512^2 benchmark size is built directly here. *)
let mk_transpose ~n : Kit.workload =
  let mem = Memory.create () in
  let out = Memory.alloc mem Grover_ir.Ssa.F32 (n * n) in
  let inp = Memory.alloc mem Grover_ir.Ssa.F32 (n * n) in
  let gen = Kit.float_gen 42 in
  Memory.fill_floats inp (fun _ -> gen ());
  let check () =
    let i = Memory.to_float_array inp and o = Memory.to_float_array out in
    let expected = Array.init (n * n) (fun k -> i.((k mod n * n) + (k / n))) in
    Kit.check_floats ~label:"NVD-MT" ~expected ~actual:o ~eps:0.0
  in
  {
    Kit.mem;
    args = [ Runtime.Abuf out; Runtime.Abuf inp; Runtime.Aint n; Runtime.Aint n ];
    global = (n, n, 1);
    local = (16, 16, 1);
    check;
  }

type row = {
  version : H.version;
  engine : Interp.engine;
  domains : int;  (** requested (0 = auto) *)
  path : string;
      (** execution path actually taken: wg-vec / wg-loop / fiberless / fiber *)
  lane_width : int;  (** work-items per lane batch; 1 on non-batched paths *)
  pool_domains : int;  (** domains actually used, incl. the caller *)
  clamped : bool;
      (** the request exceeded the hardware cap or the profitable
          per-domain share and was clamped down *)
  sanitize : bool;  (** launched through the shadow-memory sanitizer *)
  seconds : float;
  wi_per_sec : float;
}

let version_name = function H.With_lm -> "with_lm" | H.Without_lm -> "without_lm"
let engine_name = function Interp.Compiled -> "compiled" | Interp.Tree -> "tree"

let measure ~(version : H.version) ~(engine : Interp.engine)
    ?(force_fibers = false) ?force_path ?(sanitize = false) ~(domains : int)
    ~(n : int) ~(reps : int) () : row =
  let fn, _ = H.compile_version Nvd_mt.case version in
  let compiled = Interp.prepare ~engine fn in
  let w = mk_transpose ~n in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let p = Runtime.plan compiled ~cfg ~force_fibers ?force_path ~domains () in
  let one_launch () =
    if sanitize then begin
      (* A fresh shadow state per launch, as `groverc sanitize` would pay. *)
      let _totals, findings =
        Runtime.run_sanitized compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem
          ~force_fibers ?force_path ()
      in
      if findings <> [] then failwith "perf bench: unexpected sanitizer finding"
    end
    else
      ignore
        (Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ~domains
           ~force_fibers ?force_path ())
  in
  (* One untimed warm-up launch: first-touch page faults, pool-domain
     spawning and GC ramp-up otherwise land on whichever row runs first
     and skew the scaling comparison at small sizes. *)
  one_launch ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    one_launch ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (match w.Kit.check () with
  | Ok () -> ()
  | Error m -> failwith ("perf bench produced wrong output: " ^ m));
  let n_items = n * n in
  let path = Runtime.path_name p in
  {
    version;
    engine;
    domains;
    path;
    lane_width = (if path = "wg-vec" then Interp.lane_width_of compiled else 1);
    pool_domains = p.Runtime.domains_used;
    clamped = p.Runtime.domains_clamped;
    sanitize;
    seconds = !best;
    wi_per_sec = float_of_int n_items /. !best;
  }

(* -- Compile-cache timing -----------------------------------------------------

   Cold (sequential and parallel batch) vs warm (memory tier, disk tier)
   compile time for the whole 12-kernel suite in both versions, plus the
   hit rates the warm runs achieved. Doubles as the gate that the cache
   actually pays for itself: a warm memory-tier compile of the suite must
   be at least 5x faster than a cold one. *)

module Cache = Grover_cache.Compile_cache

type cache_stats = {
  cs_requests : int;
  cs_distinct : int;
  cs_cold_seq : float;
  cs_cold_batch : float;
  cs_warm_mem : float;
  cs_warm_disk : float;
  cs_warm_mem_hits : int;
  cs_warm_disk_hits : int;
}

let cache_bench () : cache_stats =
  let rqs =
    List.concat_map
      (fun (case : Kit.case) ->
        List.map
          (fun variant ->
            Cache.request ~defines:case.Kit.defines ~variant case.Kit.source)
          [ Cache.With_lm; Cache.Without_lm case.Kit.remove ])
      Grover_suite.Suite.all
  in
  let distinct =
    List.length (List.sort_uniq compare (List.map Cache.key_of_request rqs))
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "grover-bench-cache-%d" (Unix.getpid ()))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Cold, sequential: every request built front to back, one domain. *)
  let seq_cache = Cache.create () in
  let cold_seq = time (fun () -> List.iter (fun rq -> ignore (Cache.compile seq_cache rq)) rqs) in
  (* Cold, batch: distinct misses spread over the domain pool, artifacts
     published to the disk tier. *)
  let batch_cache = Cache.create ~dir () in
  let cold_batch = time (fun () -> ignore (Cache.compile_batch batch_cache rqs)) in
  (* Warm, memory tier: the same cache instance replays from prepared
     closures. *)
  Cache.reset_stats batch_cache;
  let warm_mem = time (fun () -> ignore (Cache.compile_batch batch_cache rqs)) in
  let mem_hits = (Cache.stats batch_cache).Cache.st_mem_hits in
  (* Warm, disk tier: a fresh process would start here — artifacts load
     from disk and only [Interp.prepare] is re-paid. *)
  let disk_cache = Cache.create ~dir () in
  let warm_disk = time (fun () -> ignore (Cache.compile_batch disk_cache rqs)) in
  let disk_hits = (Cache.stats disk_cache).Cache.st_disk_hits in
  Cache.clear disk_cache;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  {
    cs_requests = List.length rqs;
    cs_distinct = distinct;
    cs_cold_seq = cold_seq;
    cs_cold_batch = cold_batch;
    cs_warm_mem = warm_mem;
    cs_warm_disk = warm_disk;
    cs_warm_mem_hits = mem_hits;
    cs_warm_disk_hits = disk_hits;
  }

let report_cache (cs : cache_stats) : unit =
  Printf.printf
    "\ncompile cache: %d requests (%d distinct) across the suite\n" cs.cs_requests
    cs.cs_distinct;
  Printf.printf "%-22s %12s %14s\n" "tier" "seconds" "vs cold-seq";
  List.iter
    (fun (label, s) ->
      Printf.printf "%-22s %12.4f %13.1fx\n" label s (cs.cs_cold_seq /. s))
    [ ("cold sequential", cs.cs_cold_seq);
      ("cold parallel batch", cs.cs_cold_batch);
      ("warm memory tier", cs.cs_warm_mem);
      ("warm disk tier", cs.cs_warm_disk) ];
  Printf.printf "warm hit rate: memory %d/%d, disk %d/%d\n" cs.cs_warm_mem_hits
    cs.cs_requests cs.cs_warm_disk_hits cs.cs_distinct;
  (* The acceptance gate: if a warm compile is not >= 5x a cold one, the
     cache is overhead, not a cache. *)
  if cs.cs_cold_seq < 5.0 *. cs.cs_warm_mem then begin
    Printf.eprintf
      "perf bench FAILED: warm-cache compile (%.4fs) is not >= 5x faster \
       than cold (%.4fs)\n"
      cs.cs_warm_mem cs.cs_cold_seq;
    exit 1
  end;
  if cs.cs_warm_mem_hits < cs.cs_requests then begin
    Printf.eprintf
      "perf bench FAILED: warm memory-tier run hit only %d/%d requests\n"
      cs.cs_warm_mem_hits cs.cs_requests;
    exit 1
  end

(* -- Masked lane execution ----------------------------------------------------

   The if-conversion tally and its payoff. [masked_region_count] walks the
   whole suite (both versions) and counts the region entries whose lane
   verdict is [Lane_masked] — divergent-but-pure diamonds that the lane
   compiler runs under a per-lane mask instead of dropping the region to
   the one-work-item scalar sweep. The bench *fails* if the count is zero:
   the guard-diamond kernels (NVD-MM boundary clamp, NBody tail guard)
   must keep qualifying, or the masked path has silently rotted back to
   bail-on-divergence.

   [masked_bench] then measures what masking buys on one upgraded kernel:
   NVD-MM-A with_lm (whose row clamp previously forced scalar sweeps)
   forced onto wg-vec (masked lane batches) vs forced onto wg-loop (the
   scalar sweep those regions used to take). Both runs validate their
   output against the host reference. *)

module Regions = Grover_ir.Regions

let suite_pairs () : (Kit.case * H.version) list =
  List.concat_map
    (fun c -> [ (c, H.With_lm); (c, H.Without_lm) ])
    Grover_suite.Suite.all

type masked_stats = {
  mk_regions : int;  (** [Lane_masked] region entries across the suite *)
  mk_case : string;  (** the upgraded kernel measured below *)
  mk_lane_width : int;
  mk_vec_wi_per_sec : float;  (** masked wg-vec throughput *)
  mk_loop_wi_per_sec : float;  (** forced scalar-sweep throughput *)
  mk_speedup : float;  (** masked wg-vec / scalar sweep *)
}

let masked_region_count () : int =
  List.fold_left
    (fun acc ((case : Kit.case), v) ->
      let fn, _ = H.compile_version case v in
      match Regions.form fn with
      | Regions.Formed i ->
          Array.fold_left
            (fun a e ->
              match e with Regions.Lane_masked _ -> a + 1 | _ -> a)
            acc i.Regions.lane_entries
      | Regions.Fallback _ -> acc)
    0 (suite_pairs ())

let masked_bench ~(quick : bool) ~(reps : int) () : masked_stats =
  let regions = masked_region_count () in
  if regions = 0 then begin
    Printf.eprintf
      "perf bench FAILED: no suite region runs masked lane batches \
       (if-conversion of guard diamonds fell back to the scalar sweep?)\n";
    exit 1
  end;
  let case = Nvd_mm.case_a in
  let fn, _ = H.compile_version case H.With_lm in
  let compiled = Interp.prepare ~engine:Interp.Compiled fn in
  let scale = if quick then 4 else 1 in
  let w = case.Kit.mk ~scale in
  let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
  let gx, gy, gz = w.Kit.global in
  let items = float_of_int (gx * gy * gz) in
  let throughput force_path want =
    let p = Runtime.plan compiled ~cfg ~force_path () in
    let path = Runtime.path_name p in
    if path <> want then begin
      Printf.eprintf
        "perf bench FAILED: %s forced onto %s ran %s instead (masked lane \
         compilation lost the kernel?)\n"
        case.Kit.id want path;
      exit 1
    end;
    let one () =
      ignore
        (Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem
           ~force_path ())
    in
    one ();
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      one ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (match w.Kit.check () with
    | Ok () -> ()
    | Error m ->
        failwith
          (Printf.sprintf "perf bench: %s on %s produced wrong output: %s"
             case.Kit.id want m));
    items /. !best
  in
  let vec = throughput Runtime.Wg_vec "wg-vec" in
  let loop = throughput Runtime.Wg_loop "wg-loop" in
  {
    mk_regions = regions;
    mk_case = case.Kit.id;
    mk_lane_width = Interp.lane_width_of compiled;
    mk_vec_wi_per_sec = vec;
    mk_loop_wi_per_sec = loop;
    mk_speedup = vec /. loop;
  }

let report_masked (s : masked_stats) : unit =
  Printf.printf
    "\nmasked lane execution: %d region(s) across the suite run divergent \
     diamonds if-converted\n\
    \  %s with_lm, masked wg-vec (%d lanes) vs forced scalar sweep: %.0f vs \
     %.0f wi/sec (%.2fx)\n"
    s.mk_regions s.mk_case s.mk_lane_width s.mk_vec_wi_per_sec
    s.mk_loop_wi_per_sec s.mk_speedup

(* -- Multi-launch (out-of-order queue) throughput -----------------------------

   The whole suite in both versions x [jobs] independent workloads each,
   submitted two ways: one serial [Runtime.launch] at a time, and all at
   once through one out-of-order [Queue] drained across the domain pool.
   Differential first — both submissions must produce bit-identical
   global buffers and identical per-launch trace totals — then
   throughput: on a multi-core host the queue must actually pipeline
   (>= 1.3x quick / >= 2x full aggregate wi/sec); on a single effective
   domain the speedup gate is vacuous and only the overhead gate (queued
   within 10% of sequential) applies, via --check-scaling. *)

type ml_stats = {
  ml_launches : int;
  ml_items : int;
  ml_seq_seconds : float;
  ml_q_seconds : float;
  ml_speedup : float;  (** sequential seconds / queued seconds *)
  ml_pool_domains : int;  (** pool width the queue drained with *)
  ml_clamped : bool;  (** true when the hardware cap limited the pool *)
  ml_gate : string;  (** "enforced (...)" or "skipped (...)" *)
}

(* Snapshot of every Global/Constant buffer in a prepared set, keyed by
   per-workload allocation id. Local/Private scratch is excluded: the
   sequential path allocates it into the workload memory while the queue
   path uses per-domain scratch arenas, so only the user-visible spaces
   are comparable — and those are exactly what bit-identical means. *)
let global_storages (pls : H.prepared_launch list) :
    (int * Memory.storage) list list =
  List.map
    (fun (pl : H.prepared_launch) ->
      pl.H.pl_w.Kit.mem.Memory.buffers
      |> List.filter (fun (b : Memory.buffer) ->
             match b.Memory.space with
             | Grover_ir.Ssa.Global | Grover_ir.Ssa.Constant -> true
             | _ -> false)
      |> List.map (fun (b : Memory.buffer) -> (b.Memory.bid, b.Memory.st))
      |> List.sort compare)
    pls

let multi_launch_bench ~(quick : bool) ~(reps : int) () : ml_stats =
  let jobs = if quick then 2 else 4 in
  let scale = if quick then 8 else 4 in
  let set = suite_pairs () in
  (* Differential pass: two identically-prepared sets (Kit workloads seed
     their PRNG per case, so inputs are bit-identical), one run each way. *)
  let pls_seq = H.prepare_launches ~jobs ~scale set in
  let pls_q = H.prepare_launches ~jobs ~scale set in
  let seq_t0, tot_seq = H.run_sequential pls_seq in
  let q_t0, tot_q = H.run_queued ~domains:0 pls_q in
  H.validate_launches pls_seq;
  H.validate_launches pls_q;
  if global_storages pls_seq <> global_storages pls_q then begin
    Printf.eprintf
      "perf bench FAILED: multi-launch queued buffers differ from \
       sequential (schedule leaked into results)\n";
    exit 1
  end;
  if tot_seq <> tot_q then begin
    Printf.eprintf
      "perf bench FAILED: multi-launch queued trace totals differ from \
       sequential\n";
    exit 1
  end;
  (* Throughput pass: interleaved re-runs over the same (already warm)
     prepared sets, best-of-reps each way. The kernels are deterministic
     functions of their (unchanged) inputs, so re-running only rewrites
     the outputs with the same values. *)
  let best_seq = ref seq_t0 and best_q = ref q_t0 in
  for _ = 1 to reps do
    let s, _ = H.run_sequential pls_seq in
    if s < !best_seq then best_seq := s;
    let q, _ = H.run_queued ~domains:0 pls_q in
    if q < !best_q then best_q := q
  done;
  let width =
    min (Runtime.resolve_domains 0) (Runtime.effective_domain_cap ())
  in
  let need_domains = if quick then 2 else 4 in
  let need_speedup = if quick then 1.3 else 2.0 in
  (* A failed speedup gate gets two more attempts: a load burst on a
     shared machine can depress one side; a real pipelining failure
     cannot pass even once. *)
  let rec retime k =
    let speedup = !best_seq /. !best_q in
    if speedup >= need_speedup || k >= 3 then speedup
    else begin
      let s, _ = H.run_sequential pls_seq in
      if s < !best_seq then best_seq := s;
      let q, _ = H.run_queued ~domains:0 pls_q in
      if q < !best_q then best_q := q;
      retime (k + 1)
    end
  in
  let gate =
    if width >= need_domains then begin
      let speedup = retime 1 in
      if speedup < need_speedup then begin
        Printf.eprintf
          "perf bench FAILED: multi-launch queue at %d domains reached only \
           %.2fx over sequential (need >= %.1fx)\n"
          width speedup need_speedup;
        exit 1
      end;
      Printf.sprintf "enforced (>= %.1fx at %d domains)" need_speedup width
    end
    else
      Printf.sprintf "skipped (only %d effective domain%s, need >= %d)" width
        (if width = 1 then "" else "s")
        need_domains
  in
  {
    ml_launches = List.length pls_seq;
    ml_items = H.launch_items pls_seq;
    ml_seq_seconds = !best_seq;
    ml_q_seconds = !best_q;
    ml_speedup = !best_seq /. !best_q;
    ml_pool_domains = width;
    ml_clamped = width < Runtime.resolve_domains 0;
    ml_gate = gate;
  }

let report_multi_launch (s : ml_stats) : unit =
  let items = float_of_int s.ml_items in
  Printf.printf
    "\nmulti-launch queue: %d launches, %d work-items, %d pool domain%s%s\n\
    \  sequential %12.4fs %14.0f wi/sec\n\
    \  queued     %12.4fs %14.0f wi/sec  (%.2fx)\n\
    \  speedup gate: %s\n"
    s.ml_launches s.ml_items s.ml_pool_domains
    (if s.ml_pool_domains = 1 then "" else "s")
    (if s.ml_clamped then " (clamped)" else "")
    s.ml_seq_seconds
    (items /. s.ml_seq_seconds)
    s.ml_q_seconds
    (items /. s.ml_q_seconds)
    s.ml_speedup s.ml_gate

let run ?(quick = false) ?(check_scaling = false) ?(multi_launch = false) () :
    unit =
  (* Quick mode still needs runs long enough for the 10% scaling gate:
     at 128^2 a row finishes in ~3 ms and timer noise alone exceeds the
     gate, so quick uses 256^2 with best-of-5. *)
  let n = if quick then 256 else 512 in
  let reps = if quick then 5 else 3 in
  Exp.header
    (Printf.sprintf
       "Interpreter throughput: NVD-MT %dx%d, %d reps (work-items/sec; \
        compiled closures vs tree walk; domain-scaling sweep on the \
        persistent pool)"
       n n reps);
  let m = measure ~n ~reps in
  let engine_rows =
    [ m ~version:H.With_lm ~engine:Interp.Tree ~domains:1 ();
      (* Default path for the compiled with_lm version: wg-vec. *)
      m ~version:H.With_lm ~engine:Interp.Compiled ~domains:1 ();
      (* The one-work-item region sweep on the same kernel — the pair
         quantifies what lane batching buys over PR 5's executor. *)
      m ~version:H.With_lm ~engine:Interp.Compiled ~domains:1
        ~force_path:Runtime.Wg_loop ();
      (* The fiber oracle — wg-loop vs this pair quantifies what
         barrier-region execution buys over the effect-handler scheduler. *)
      m ~version:H.With_lm ~engine:Interp.Compiled ~domains:1
        ~force_fibers:true ();
      m ~version:H.Without_lm ~engine:Interp.Tree ~domains:1 ();
      m ~version:H.Without_lm ~engine:Interp.Compiled ~domains:1 ();
      (* domains = 0 asks the runtime for the recommended domain count. *)
      m ~version:H.With_lm ~engine:Interp.Compiled ~domains:0 () ]
  in
  (* Sanitizer overhead: the same launch through the shadow-memory
     sanitizer (always single-domain — the shadow state is not
     thread-safe), against the plain 1-domain compiled rows above. *)
  let sanitize_rows =
    [ m ~version:H.With_lm ~engine:Interp.Compiled ~domains:1 ~sanitize:true ();
      m ~version:H.Without_lm ~engine:Interp.Compiled ~domains:1 ~sanitize:true
        () ]
  in
  (* The scaling sweep: wg-vec on the with_lm version, then the
     Grover-transformed (barrier-free) version fiberless vs forced
     fibers, across requested domain counts. *)
  let sweep_rows =
    List.concat_map
      (fun (version, force_fibers) ->
        List.map
          (fun domains ->
            m ~version ~engine:Interp.Compiled ~force_fibers ~domains ())
          [ 1; 2; 4; 0 ])
      [ (H.With_lm, false); (H.Without_lm, false); (H.Without_lm, true) ]
  in
  let rows = engine_rows @ sanitize_rows @ sweep_rows in
  Printf.printf "%-12s %-10s %-8s %-10s %5s %6s %7s %9s %12s %14s\n" "version"
    "engine" "domains" "path" "lanes" "pool" "clamped" "sanitize" "seconds"
    "wi/sec";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-10s %-8s %-10s %5d %6d %7s %9s %12.4f %14.0f\n"
        (version_name r.version) (engine_name r.engine)
        (if r.domains = 0 then "auto" else string_of_int r.domains)
        r.path r.lane_width r.pool_domains
        (if r.clamped then "yes" else "no")
        (if r.sanitize then "yes" else "no")
        r.seconds r.wi_per_sec)
    rows;
  let find ?(path = "") ?(sanitize = false) v e d =
    List.find
      (fun r ->
        r.version = v && r.engine = e && r.domains = d
        && r.sanitize = sanitize
        && (path = "" || r.path = path))
      rows
  in
  (* Lane compilation and region formation must keep succeeding on the
     flagship barrier kernel: if no with_lm row ran on wg-vec (or none on
     wg-loop), the fast paths silently rotted and every "speedup from
     disabling local memory" number would conflate the paper's effect
     with scheduler overhead again. *)
  let gate path =
    if
      not
        (List.exists
           (fun r -> r.version = H.With_lm && r.path = path && not r.sanitize)
           rows)
    then begin
      Printf.eprintf
        "perf bench FAILED: no with_lm row took the %s path (lane \
         compilation / region formation fell back?)\n"
        path;
      exit 1
    end
  in
  gate "wg-vec";
  gate "wg-loop";
  let speedup v =
    (find v Interp.Compiled 1).wi_per_sec /. (find v Interp.Tree 1).wi_per_sec
  in
  let sp_with = speedup H.With_lm and sp_without = speedup H.Without_lm in
  let fiberless_1 = find ~path:"fiberless" H.Without_lm Interp.Compiled 1 in
  let fiber_1 = find ~path:"fiber" H.Without_lm Interp.Compiled 1 in
  let sp_fiberless = fiberless_1.wi_per_sec /. fiber_1.wi_per_sec in
  let wgvec_1 = find ~path:"wg-vec" H.With_lm Interp.Compiled 1 in
  let wgloop_1 = find ~path:"wg-loop" H.With_lm Interp.Compiled 1 in
  let wl_fiber_1 = find ~path:"fiber" H.With_lm Interp.Compiled 1 in
  let sp_wgvec = wgvec_1.wi_per_sec /. wgloop_1.wi_per_sec in
  let sp_wgloop = wgloop_1.wi_per_sec /. wl_fiber_1.wi_per_sec in
  let overhead v =
    (find v Interp.Compiled 1).wi_per_sec
    /. (find ~sanitize:true v Interp.Compiled 1).wi_per_sec
  in
  let ov_with = overhead H.With_lm and ov_without = overhead H.Without_lm in
  let cs = cache_bench () in
  report_cache cs;
  let mk = masked_bench ~quick ~reps () in
  report_masked mk;
  let ml = if multi_launch then Some (multi_launch_bench ~quick ~reps ()) else None in
  Option.iter report_multi_launch ml;
  (* The predictor-agreement gate runs in every mode, quick included: if
     the analytical model stops picking the measured winners, `groverc
     promote --predict` would start recording wrong tuning decisions. *)
  let pa = Predictor.agreement_gate () in
  Printf.printf
    "\nspeedup compiled/tree: with_lm %.2fx, without_lm %.2fx\n\
     wg-vec (%d lanes) vs forced wg-loop (with_lm, 1 domain): %.2fx\n\
     wg-loop vs forced fibers (with_lm, 1 domain): %.2fx\n\
     fiberless fast path vs forced fibers (without_lm, 1 domain): %.2fx\n\
     sanitizer overhead (plain / sanitized wi/sec): with_lm %.2fx, \
     without_lm %.2fx\n"
    sp_with sp_without wgvec_1.lane_width sp_wgvec sp_wgloop sp_fiberless
    ov_with ov_without;
  if not quick then begin
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"interp-throughput\",\n  \"case\": \"NVD-MT\",\n\
    \  \"n\": %d,\n  \"reps\": %d,\n  \"rows\": [\n" n reps;
  List.iteri
    (fun k r ->
      Printf.fprintf oc
        "    {\"version\": \"%s\", \"engine\": \"%s\", \"domains\": %d, \
         \"path\": \"%s\", \"lane_width\": %d, \"pool_domains\": %d, \
         \"sanitize\": %b, \"seconds\": %.6f, \"wi_per_sec\": %.0f}%s\n"
        (version_name r.version) (engine_name r.engine) r.domains r.path
        r.lane_width r.pool_domains r.sanitize r.seconds r.wi_per_sec
        (if k = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"speedup_with_lm\": %.2f,\n  \"speedup_without_lm\": %.2f,\n\
    \  \"speedup_wgvec_over_wgloop\": %.2f,\n\
    \  \"speedup_wgloop_over_fiber\": %.2f,\n\
    \  \"speedup_fiberless_over_fiber\": %.2f,\n\
    \  \"sanitizer_overhead_with_lm\": %.2f,\n\
    \  \"sanitizer_overhead_without_lm\": %.2f,\n\
    \  \"masked_regions\": %d,\n\
    \  \"masked_case\": \"%s\",\n\
    \  \"speedup_masked_over_scalar_sweep\": %.2f,\n\
    \  \"compile_cache\": {\n\
    \    \"requests\": %d,\n\
    \    \"distinct_keys\": %d,\n\
    \    \"cold_seq_seconds\": %.6f,\n\
    \    \"cold_batch_seconds\": %.6f,\n\
    \    \"warm_mem_seconds\": %.6f,\n\
    \    \"warm_disk_seconds\": %.6f,\n\
    \    \"warm_mem_speedup\": %.1f,\n\
    \    \"warm_disk_speedup\": %.1f,\n\
    \    \"warm_mem_hit_rate\": %.3f,\n\
    \    \"warm_disk_hit_rate\": %.3f\n\
    \  }"
    sp_with sp_without sp_wgvec sp_wgloop sp_fiberless ov_with ov_without
    mk.mk_regions mk.mk_case mk.mk_speedup
    cs.cs_requests cs.cs_distinct cs.cs_cold_seq cs.cs_cold_batch
    cs.cs_warm_mem cs.cs_warm_disk
    (cs.cs_cold_seq /. cs.cs_warm_mem)
    (cs.cs_cold_seq /. cs.cs_warm_disk)
    (float_of_int cs.cs_warm_mem_hits /. float_of_int cs.cs_requests)
    (float_of_int cs.cs_warm_disk_hits /. float_of_int cs.cs_distinct);
  Printf.fprintf oc
    ",\n\
    \  \"predictor_agreement\": {\n\
    \    \"scale\": %d,\n\
    \    \"cases\": %d,\n\
    \    \"agree\": %d,\n\
    \    \"rows\": [\n"
    Predictor.agreement_scale (List.length pa)
    (List.length
       (List.filter
          (fun (r : Predictor.agreement_row) ->
            r.Predictor.ag_model = r.Predictor.ag_measured)
          pa));
  List.iteri
    (fun k (r : Predictor.agreement_row) ->
      Printf.fprintf oc
        "      {\"case\": \"%s\", \"measured\": \"%s\", \"model\": \"%s\", \
         \"np_sim\": %.4f, \"np_model\": %.4f}%s\n"
        r.Predictor.ag_id r.Predictor.ag_measured r.Predictor.ag_model
        r.Predictor.ag_np_sim r.Predictor.ag_np_model
        (if k = List.length pa - 1 then "" else ","))
    pa;
  Printf.fprintf oc "    ]\n  }";
  Option.iter
    (fun s ->
      Printf.fprintf oc
        ",\n\
        \  \"multi_launch\": {\n\
        \    \"launches\": %d,\n\
        \    \"items\": %d,\n\
        \    \"seq_seconds\": %.6f,\n\
        \    \"queue_seconds\": %.6f,\n\
        \    \"speedup\": %.2f,\n\
        \    \"pool_domains\": %d,\n\
        \    \"clamped\": %b,\n\
        \    \"gate\": \"%s\"\n\
        \  }"
        s.ml_launches s.ml_items s.ml_seq_seconds s.ml_q_seconds s.ml_speedup
        s.ml_pool_domains s.ml_clamped s.ml_gate)
    ml;
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_interp.json\n%!"
  end;
  if check_scaling then begin
    (* The regression gate: auto-domain parallel execution must not be
       slower than serial beyond noise (>10%) on any measured
       configuration — the exact failure mode the per-launch Domain.spawn
       runtime exhibited. *)
    let checks =
      [ ("with_lm wg-vec", H.With_lm, false);
        ("without_lm fiberless", H.Without_lm, false);
        ("without_lm fiber", H.Without_lm, true) ]
    in
    (* The table rows above are measured minutes apart, so a background
       load spike on a shared machine can depress one side of a
       comparison by far more than 10%. The gate therefore re-times each
       pair with interleaved launches — serial, auto, serial, auto, ... —
       so both sides sample the same load profile, and compares best-of. *)
    let measure_pair ~version ~force_fibers =
      let fn, _ = H.compile_version Nvd_mt.case version in
      let compiled = Interp.prepare ~engine:Interp.Compiled fn in
      let w = mk_transpose ~n in
      let cfg = { Runtime.global = w.Kit.global; local = w.Kit.local; queues = 1 } in
      let time domains =
        let t0 = Unix.gettimeofday () in
        let (_ : Trace.totals) =
          Runtime.launch compiled ~cfg ~args:w.Kit.args ~mem:w.Kit.mem ~domains
            ~force_fibers ()
        in
        Unix.gettimeofday () -. t0
      in
      ignore (time 1);
      ignore (time 0);
      let best_serial = ref infinity and best_auto = ref infinity in
      for _ = 1 to reps do
        let s = time 1 in
        if s < !best_serial then best_serial := s;
        let a = time 0 in
        if a < !best_auto then best_auto := a
      done;
      let items = float_of_int (n * n) in
      (items /. !best_serial, items /. !best_auto)
    in
    let failed =
      List.filter_map
        (fun (label, version, force_fibers) ->
          let path =
            if force_fibers then "fiber"
            else if version = H.With_lm then "wg-vec"
            else "fiberless"
          in
          let auto_row = find ~path version Interp.Compiled 0 in
          (* Three attempts: a genuine regression (the per-launch spawn
             runtime was ~2x slower) fails every one; an unlucky load
             burst does not. *)
          let rec attempt k =
            let serial, auto = measure_pair ~version ~force_fibers in
            if auto >= 0.9 *. serial then None
            else if k < 3 then attempt (k + 1)
            else
              Some
                (Printf.sprintf
                   "%s: domains=auto (%d pool domains) runs at %.0f wi/sec, \
                    >10%% below domains=1 at %.0f wi/sec"
                   label auto_row.pool_domains auto serial)
          in
          attempt 1)
        checks
    in
    (* The multi-launch row of the scaling check: draining the same
       launch set through the out-of-order queue must stay within noise
       of sequential submission at *any* pool width — hazard tracking,
       event plumbing and scheduler locking have to be free even when a
       single effective domain means no pipelining win is possible. *)
    let ml_pair () =
      let set = suite_pairs () in
      let pls_seq = H.prepare_launches ~jobs:2 ~scale:8 set in
      let pls_q = H.prepare_launches ~jobs:2 ~scale:8 set in
      ignore (H.run_sequential pls_seq);
      ignore (H.run_queued ~domains:0 pls_q);
      let best_s = ref infinity and best_q = ref infinity in
      for _ = 1 to reps do
        let s, _ = H.run_sequential pls_seq in
        if s < !best_s then best_s := s;
        let q, _ = H.run_queued ~domains:0 pls_q in
        if q < !best_q then best_q := q
      done;
      let items = float_of_int (H.launch_items pls_seq) in
      (items /. !best_s, items /. !best_q)
    in
    let rec ml_attempt k =
      let seq, q = ml_pair () in
      if q >= 0.9 *. seq then begin
        Printf.printf
          "scaling check multi-launch row: queued %.0f wi/sec vs sequential \
           %.0f wi/sec (%.2fx)\n%!"
          q seq (q /. seq);
        None
      end
      else if k < 3 then ml_attempt (k + 1)
      else
        Some
          (Printf.sprintf
             "multi-launch: queued submission runs at %.0f wi/sec, >10%% \
              below sequential at %.0f wi/sec"
             q seq)
    in
    match failed @ Option.to_list (ml_attempt 1) with
    | [] -> Printf.printf "scaling check: ok (auto >= 0.9x serial on all paths)\n%!"
    | msgs ->
        List.iter (Printf.eprintf "scaling check FAILED: %s\n") msgs;
        exit 1
  end
