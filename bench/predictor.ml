(* Evaluation of the analytical (countless) performance model against the
   trace-driven simulator — the paper's §VIII "model the performance
   benefits/losses on CPUs" future-work item, and a quantitative argument
   for its empirical methodology. *)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit
module P = Grover_memsim.Platform
module Predict = Grover_memsim.Predict

let eval_case (case : Kit.case) (plat : P.t) ~scale =
  let cmp = H.compare case ~platform:plat ~scale in
  let wg_size =
    let x, y, z = (case.Kit.mk ~scale).Kit.local in
    x * y * z
  in
  let fn_vectorized =
    let fn, _ = H.compile_version case H.With_lm in
    H.uses_vector_types fn
  in
  let inp (r : H.run) =
    { Predict.totals = r.H.totals; wg_size; vectorized = fn_vectorized }
  in
  let np_pred =
    Predict.predict_np plat ~with_lm:(inp cmp.H.with_lm)
      ~without_lm:(inp cmp.H.without_lm)
  in
  (cmp.H.normalized, np_pred)

(* -- The agreement gate --------------------------------------------------------

   The bidirectional optimizer lets the analytical model *decide* (groverc
   promote --predict), so the model must keep picking the same winner the
   measurements pick. The expectation below is the measured outcome column
   (Table IV / Fig. 10 direction) for the bundled suite: the with_lm /
   without_lm winner by trace-driven simulation on SNB at scale 8. The
   simulator is deterministic at a fixed scale, so any drift here is a code
   change, not noise. *)

let agreement_scale = 8

let measured_winners =
  [ ("AMD-SS", "without_lm");
    ("AMD-MT", "without_lm");
    ("NVD-MT", "without_lm");
    ("AMD-RG", "without_lm");
    ("AMD-MM", "without_lm");
    ("NVD-MM-A", "without_lm");
    ("NVD-MM-B", "with_lm");
    ("NVD-MM-AB", "without_lm");
    ("NVD-NBody", "with_lm");
    ("PAB-ST", "without_lm");
    ("ROD-SC", "without_lm");
    ("TNG-GEMM4", "without_lm") ]

type agreement_row = {
  ag_id : string;
  ag_measured : string;  (** checked-in winner (simulation, scale 8) *)
  ag_sim : string;  (** winner the simulation picks right now *)
  ag_model : string;  (** winner the analytical model picks right now *)
  ag_np_sim : float;
  ag_np_model : float;
}

let winner_of_np np = if np > 1.0 then "without_lm" else "with_lm"

let agreement () : agreement_row list =
  List.map
    (fun (case : Kit.case) ->
      let np_sim, np_model = eval_case case P.snb ~scale:agreement_scale in
      let measured =
        match List.assoc_opt case.Kit.id measured_winners with
        | Some w -> w
        | None ->
            Printf.eprintf
              "predictor agreement: no measured winner recorded for %s — add \
               it to Predictor.measured_winners\n"
              case.Kit.id;
            exit 1
      in
      {
        ag_id = case.Kit.id;
        ag_measured = measured;
        ag_sim = winner_of_np np_sim;
        ag_model = winner_of_np np_model;
        ag_np_sim = np_sim;
        ag_np_model = np_model;
      })
    Grover_suite.Suite.all

(** Run the agreement check and hard-fail (exit 1) on the first benchmark
    where the analytical model — or the simulation itself — no longer
    picks the recorded measured winner. *)
let agreement_gate () : agreement_row list =
  let rows = agreement () in
  Printf.printf
    "\npredictor agreement (winner by model vs measured, scale %d):\n"
    agreement_scale;
  Printf.printf "%-11s %-12s %-12s %-12s %9s %9s\n" "Benchmark" "measured"
    "sim" "model" "np(sim)" "np(model)";
  List.iter
    (fun r ->
      Printf.printf "%-11s %-12s %-12s %-12s %9.2f %9.2f%s\n" r.ag_id
        r.ag_measured r.ag_sim r.ag_model r.ag_np_sim r.ag_np_model
        (if r.ag_model <> r.ag_measured || r.ag_sim <> r.ag_measured then
           "  <- DISAGREES"
         else ""))
    rows;
  let bad =
    List.filter
      (fun r -> r.ag_model <> r.ag_measured || r.ag_sim <> r.ag_measured)
      rows
  in
  if bad <> [] then begin
    Printf.eprintf
      "predictor agreement FAILED on %d benchmark%s (%s): the model may no \
       longer drive groverc promote --predict\n"
      (List.length bad)
      (if List.length bad = 1 then "" else "s")
      (String.concat ", " (List.map (fun r -> r.ag_id) bad));
    exit 1
  end;
  Printf.printf "predictor agreement: %d/%d winners match\n" (List.length rows)
    (List.length rows);
  rows

let run ~scale () =
  Exp.header
    "Predictor: analytical (countless) model vs trace-driven simulation \
     (np on SNB)";
  Printf.printf "%-11s %10s %10s %8s  %s\n" "Benchmark" "np (sim)" "np (model)"
    "|err|" "";
  let errs = ref [] in
  List.iter
    (fun (case : Kit.case) ->
      let np_sim, np_pred = eval_case case P.snb ~scale in
      let err = Float.abs (np_sim -. np_pred) in
      errs := (case.Kit.id, np_sim, np_pred, err) :: !errs;
      Printf.printf "%-11s %10.2f %10.2f %8.2f  %s\n" case.Kit.id np_sim np_pred
        err
        (if np_sim < 1.0 && np_pred > 1.0 then "<- WRONG SIGN: model says remove, simulation says keep"
         else if err > 0.15 then "<- countless model over-estimates the removal benefit"
         else ""))
    Grover_suite.Suite.all;
  let errs = List.rev !errs in
  let mae =
    List.fold_left (fun a (_, _, _, e) -> a +. e) 0.0 errs
    /. float_of_int (List.length errs)
  in
  Printf.printf "\nmean absolute error: %.3f\n" mae;
  print_endline
    "A first-order model tracks the overhead-driven cases but over-estimates\n\
     the benefit where the removed accesses were cache-cheap, and flips the\n\
     sign on the cache-layout losses (AMD-MM) — the paper's argument for\n\
     empirical auto-tuning over modelling, quantified."
