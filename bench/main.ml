(* The benchmark harness: regenerates every table and figure of the paper
   (Table I-IV, Fig. 1/2/9/10) on the simulated platforms, plus Bechamel
   micro-benchmarks of the Grover pass itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig10   -- one experiment
     dune exec bench/main.exe -- --scale 2 fig2
*)

module H = Grover_suite.Harness
module Kit = Grover_suite.Kit

(* -- Bechamel micro-benchmarks: the cost of the pass ------------------------- *)

let micro () =
  Exp.header
    "Micro-benchmarks (Bechamel): compile + Grover transformation cost per \
     kernel";
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map
      (fun (c : Kit.case) ->
        Test.make ~name:c.Kit.id
          (Staged.stage (fun () ->
               ignore (H.compile_version c H.Without_lm))))
      Grover_suite.Suite.distinct_sources
  in
  let test = Test.make_grouped ~name:"grover-pass" tests in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-24s (no estimate)\n" name)
    results

(* -- Dispatch ------------------------------------------------------------------ *)

let () =
  let scale = ref 1 in
  let quick = ref false in
  let check_scaling = ref false in
  let multi_launch = ref false in
  let todo = ref [] in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := int_of_string v;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--check-scaling" :: rest ->
        check_scaling := true;
        parse rest
    | "--multi-launch" :: rest ->
        multi_launch := true;
        parse rest
    | x :: rest ->
        todo := x :: !todo;
        parse rest
  in
  parse args;
  let todo = List.rev !todo in
  let scale = !scale in
  let quick = !quick in
  let check_scaling = !check_scaling in
  let multi_launch = !multi_launch in
  let run_one = function
    | "table1" -> Exp.table1 ()
    | "table2" -> Exp.table2 ()
    | "fig1" -> Exp.fig1 ()
    | "fig9" -> Exp.fig9 ()
    | "table3" -> Exp.table3 ()
    | "fig2" -> ignore (Exp.fig2 ~scale ())
    | "fig10" -> ignore (Exp.fig10 ~scale ())
    | "table4" -> Exp.table4 ~scale ()
    | "micro" -> micro ()
    | "perf" -> Perf.run ~quick ~check_scaling ~multi_launch ()
    | "ablation" -> Ablation.all ~scale ()
    | "predictor" -> Predictor.run ~scale ()
    | other ->
        Printf.eprintf
          "unknown experiment %s (try table1 table2 fig1 fig9 table3 fig2 \
           fig10 table4 micro perf ablation predictor)\n"
          other;
        exit 2
  in
  match todo with
  | [] ->
      Exp.table1 ();
      Exp.table2 ();
      Exp.fig1 ();
      Exp.fig9 ();
      Exp.table3 ();
      ignore (Exp.fig2 ~scale ());
      let cmps = Exp.fig10 ~scale () in
      Exp.table4 ~cmps ~scale ();
      Ablation.all ~scale ();
      Predictor.run ~scale ();
      Perf.run ~quick ~check_scaling ~multi_launch ();
      micro ()
  | l -> List.iter run_one l
